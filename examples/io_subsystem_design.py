#!/usr/bin/env python3
"""Design a balanced I/O subsystem for the merge phase.

The paper sizes the *read* side (D input disks + cache) and assumes the
write side is "a separate set of disks" that never bottlenecks.  This
example closes the loop using the write-traffic extension: for a fixed
read array it sweeps the write-array size W and shows where the output
stream stops being the critical path -- the full design question a
storage architect would actually ask.

Run:  python examples/io_subsystem_design.py
"""

from repro import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation

K_RUNS = 25
READ_DISKS = 5
DEPTH = 10
BLOCKS_PER_RUN = 200
TRIALS = 2


def measure(write_disks: int):
    config = SimulationConfig(
        num_runs=K_RUNS,
        num_disks=READ_DISKS,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=DEPTH,
        blocks_per_run=BLOCKS_PER_RUN,
        write_disks=write_disks,
        trials=TRIALS,
    )
    return MergeSimulation(config).run()


def main() -> None:
    print(f"Read side: k={K_RUNS} runs over D={READ_DISKS} disks, "
          f"inter-run prefetching N={DEPTH}\n")

    ignored = measure(0)
    read_bound = ignored.total_time_s.mean
    print(f"{'write array':>12s} {'time (s)':>9s} {'stall (s)':>10s} "
          f"{'overhead':>9s}")
    print(f"{'(ignored)':>12s} {read_bound:9.2f} {'-':>10s} {'-':>9s}")

    recommended = None
    for write_disks in (1, 2, 3, 4, 5, 6, 8):
        result = measure(write_disks)
        stall = sum(m.write_stall_ms for m in result.trials) / (
            1000.0 * len(result.trials)
        )
        overhead = (result.total_time_s.mean - read_bound) / read_bound
        print(
            f"{write_disks:>12d} {result.total_time_s.mean:9.2f} "
            f"{stall:10.2f} {overhead:8.0%}"
        )
        if recommended is None and overhead < 0.15:
            recommended = write_disks

    print(
        f"\nSmallest write array within 15% of the read-bound time: "
        f"W = {recommended}."
    )
    print(
        "The output stream moves exactly as many blocks as the input, so\n"
        "the write array needs at least the read side's achieved aggregate\n"
        "bandwidth -- and extra headroom when per-disk buffers are shallow,\n"
        "because depletions arrive in bursts.  Only then does the paper's\n"
        "ignore-writes assumption hold."
    )


if __name__ == "__main__":
    main()
