#!/usr/bin/env python3
"""Quickstart: simulate the merge phase under each prefetching strategy.

Reproduces the paper's headline comparison at a reduced scale (200-block
runs instead of 1000) so it finishes in a few seconds:

* no prefetching (the Kwan-Baer baseline),
* intra-run prefetching ("Demand Run Only"),
* inter-run prefetching ("All Disks One Run"),

for k=25 runs on D=5 disks, and prints total merge time, achieved disk
concurrency and the prefetch success ratio.

Run:  python examples/quickstart.py
"""

from repro import PrefetchStrategy, simulate_merge

K_RUNS = 25
DISKS = 5
DEPTH = 10  # N: blocks per fetch
BLOCKS_PER_RUN = 200
TRIALS = 3


def main() -> None:
    scenarios = [
        ("no prefetching", PrefetchStrategy.NONE, {}),
        ("intra-run (Demand Run Only)", PrefetchStrategy.INTRA_RUN, {}),
        (
            "inter-run (All Disks One Run)",
            PrefetchStrategy.INTER_RUN,
            {"cache_capacity": 800},
        ),
    ]

    print(f"Merging k={K_RUNS} runs of {BLOCKS_PER_RUN} blocks over "
          f"D={DISKS} disks (N={DEPTH}, {TRIALS} trials)\n")
    print(f"{'strategy':32s} {'time (s)':>9s} {'disks busy':>11s} "
          f"{'success':>8s}")
    baseline = None
    for label, strategy, extra in scenarios:
        result = simulate_merge(
            K_RUNS,
            DISKS,
            strategy=strategy,
            prefetch_depth=DEPTH,
            blocks_per_run=BLOCKS_PER_RUN,
            trials=TRIALS,
            **extra,
        )
        time_s = result.total_time_s.mean
        if baseline is None:
            baseline = time_s
        print(
            f"{label:32s} {time_s:9.2f} "
            f"{result.average_concurrency.mean:11.2f} "
            f"{result.success_ratio.mean:8.2f}"
            f"   ({baseline / time_s:4.1f}x vs baseline)"
        )

    print(
        "\nInter-run prefetching keeps all disks busy and approaches the\n"
        "transfer-time bound; intra-run concurrency saturates at sqrt(D)\n"
        "(urn-game analysis) -- the paper's central result."
    )


if __name__ == "__main__":
    main()
