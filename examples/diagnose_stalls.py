#!/usr/bin/env python3
"""Diagnose a mis-sized configuration with the observability tools.

A merge is slower than expected.  Is the cache too small?  Are disks
idle?  Are demand fetches queueing behind prefetches?  This example
runs a deliberately under-provisioned configuration next to a healthy
one and answers those questions with the library's request traces,
wait statistics, and utilization timelines -- the workflow for tuning
a real deployment.

Run:  python examples/diagnose_stalls.py
"""

from repro import PrefetchStrategy, SimulationConfig
from repro.core.merge_sim import MergeTrial
from repro.core.timeline import utilization_report
from repro.core.tracing import render_gantt, request_statistics
from repro.disks.request import FetchKind

K_RUNS = 25
DISKS = 5
DEPTH = 10
BLOCKS_PER_RUN = 150


def run(cache_blocks: int):
    config = SimulationConfig(
        num_runs=K_RUNS,
        num_disks=DISKS,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=DEPTH,
        cache_capacity=cache_blocks,
        blocks_per_run=BLOCKS_PER_RUN,
        trials=1,
        record_timelines=True,
        record_requests=True,
    )
    return config, MergeTrial(config, seed=7).run()


def report(label: str, config, metrics) -> None:
    print(f"--- {label}: cache = {config.resolved_cache_capacity} blocks ---")
    print(f"total time     : {metrics.total_time_s:.2f} s")
    print(f"success ratio  : {metrics.success_ratio:.2f}")
    print(f"busy disks     : {metrics.average_concurrency:.2f} of {DISKS}")
    demand = request_statistics(metrics.request_traces, FetchKind.DEMAND)
    prefetch = request_statistics(metrics.request_traces, FetchKind.PREFETCH)
    print(f"demand fetches : {demand.count}, mean queue wait "
          f"{demand.mean_queue_wait_ms:.1f} ms (max "
          f"{demand.max_queue_wait_ms:.1f} ms)")
    print(f"prefetches     : {prefetch.count} covering "
          f"{prefetch.total_blocks} blocks")
    print()
    print(utilization_report(metrics, DISKS, config.resolved_cache_capacity,
                             buckets=56))
    print()
    window = metrics.total_time_ms / 20
    print(f"service windows, first {window:.0f} ms:")
    print(render_gantt(metrics.request_traces, DISKS, width=56,
                       end_ms=window))
    print()


def main() -> None:
    starved_config, starved = run(cache_blocks=260)
    healthy_config, healthy = run(cache_blocks=800)
    report("STARVED", starved_config, starved)
    report("HEALTHY", healthy_config, healthy)
    speedup = starved.total_time_s / healthy.total_time_s
    print(
        f"Diagnosis: at 260 blocks the cache almost never fits a full "
        f"{DISKS * DEPTH}-block prefetch\n(success ratio "
        f"{starved.success_ratio:.2f}), so most fetches are single demand "
        f"blocks, disks sit idle,\nand the merge runs {speedup:.1f}x "
        f"slower. The sparklines show it at a glance:\na pinned-full "
        f"cache with near-idle disks means 'grow the cache or shrink N'."
    )


if __name__ == "__main__":
    main()
