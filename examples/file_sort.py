#!/usr/bin/env python3
"""Sort an actual binary file with bounded memory.

Exercises the file-backed stack end to end: generate a binary input
file of 64-byte records (the paper's packing: 64 records per 4 KiB
block), sort it with a fixed memory budget spilling temporary runs
round-robin across two "disk" directories, verify the output, and
report the pipeline's I/O accounting -- then compare the real merge's
depletion trace against the paper's random model.

Run:  python examples/file_sort.py
"""

import shutil
import tempfile
import time
from pathlib import Path

from repro.io.blockio import BLOCK_BYTES
from repro.io.filesort import FileSorter, verify_sorted_file, write_random_input
from repro.workloads.depletion import DepletionTrace, trace_statistics

RECORDS = 100_000
MEMORY_RECORDS = 8_192  # 512 KiB of 64-byte records
DISK_DIRS = 2


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="repro-filesort-"))
    try:
        input_path = workspace / "input.blk"
        output_path = workspace / "sorted.blk"
        print(f"Generating {RECORDS} records "
              f"({RECORDS * 64 // 1024} KiB) in {input_path} ...")
        write_random_input(input_path, RECORDS, seed=7)

        sorter = FileSorter(
            memory_records=MEMORY_RECORDS,
            temp_dirs=[workspace / f"disk{i}" for i in range(DISK_DIRS)],
        )
        start = time.perf_counter()
        stats = sorter.sort_file(input_path, output_path)
        elapsed = time.perf_counter() - start

        count = verify_sorted_file(output_path)
        print(f"Sorted and verified {count} records in {elapsed:.2f}s "
              f"({count / elapsed:,.0f} records/s)\n")
        print(f"memory budget : {MEMORY_RECORDS} records "
              f"({MEMORY_RECORDS * 64 // 1024} KiB)")
        print(f"runs formed   : {stats.runs} "
              f"(spilled round-robin over {DISK_DIRS} directories)")
        print(f"run blocks    : {stats.total_run_blocks} x {BLOCK_BYTES} B")
        print(f"bytes read    : {stats.bytes_read:,}")
        print(f"bytes written : {stats.bytes_written:,}")

        trace = DepletionTrace.from_sequence(stats.depletion_trace, stats.runs)
        real = trace_statistics(trace)
        model = trace_statistics(
            DepletionTrace.random(
                stats.runs, stats.run_blocks[0], seed=1
            )
        )
        print("\nDepletion-trace statistics (real merge vs random model):")
        print(f"  interleave factor : {real['interleave_factor']:.3f} vs "
              f"{model['interleave_factor']:.3f}")
        print(f"  mean move distance: {real['mean_move_distance']:.2f} vs "
              f"{model['mean_move_distance']:.2f}")
        print(
            "\nUniform keys make the real merge's block depletions look\n"
            "like the paper's random model -- the assumption its whole\n"
            "analysis rests on."
        )
    finally:
        shutil.rmtree(workspace, ignore_errors=True)


if __name__ == "__main__":
    main()
