"""Offline-friendly shim: lets ``python setup.py develop`` provide an

editable install on machines without the ``wheel`` package (PEP 660
editable installs via ``pip install -e .`` need it).  All metadata lives
in ``pyproject.toml``."""

from setuptools import setup

setup()
