"""Garbage collection must reclaim crash debris and nothing else."""

import json
import os
import tempfile

import pytest

from repro.core.parameters import SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.sweep import CampaignManifest, ResultStore, cache_key
from repro.sweep.gc import collect_garbage

LATER = 1e10  # injected "now" far past every file's mtime


@pytest.fixture
def populated_store(tmp_path):
    config = SimulationConfig(num_runs=3, num_disks=1, blocks_per_run=20,
                              trials=1)
    metrics = MergeSimulation(config).run_trial(trial=0)
    key = cache_key(config, config.base_seed)
    store = ResultStore(tmp_path)
    store.put(key, metrics, seed=config.base_seed)
    return store, key, metrics


def test_crash_mid_write_leaves_live_entry_and_reclaimable_orphan(
    populated_store,
):
    """The core hazard: a SIGKILL between mkstemp and os.replace.

    A Python-level failure is cleaned up by ``atomic_write_json``
    itself; only process death strands the staging file.  Stage one
    exactly the way the writer does — same directory, same prefix,
    same suffix, truncated mid-payload — and prove GC reclaims it
    without touching the live entry it was about to replace.
    """
    store, key, metrics = populated_store
    path = store.path_for(key)
    before = path.read_text()

    fd, _ = tempfile.mkstemp(dir=path.parent, prefix=path.name,
                             suffix=".tmp")
    with os.fdopen(fd, "w") as handle:
        handle.write('{"schema": 2, "metrics": {"elaps')  # cut mid-write

    # The live entry is untouched; the torn write stranded a tmp file.
    assert path.read_text() == before
    orphans = list(store.tmp_files())
    assert len(orphans) == 1
    assert orphans[0].name.startswith(path.name)

    report = collect_garbage(store, min_age_s=0.0, now=LATER)
    assert [str(o) for o in orphans] == report.tmp_removed
    assert report.bytes_freed > 0
    assert report.live_entries == 1
    assert not list(store.tmp_files())
    # The survivor still round-trips.
    assert store.get(key).to_dict() == metrics.to_dict()


def test_age_gate_protects_in_flight_writes(populated_store):
    store, key, _ = populated_store
    orphan = store.path_for(key).with_suffix(".json.abc123.tmp")
    orphan.write_text("{}")

    young = collect_garbage(store, min_age_s=3600.0)
    assert young.tmp_removed == []
    assert young.skipped_young == 1
    assert orphan.exists()

    old = collect_garbage(store, min_age_s=3600.0, now=LATER)
    assert old.tmp_removed == [str(orphan)]
    assert not orphan.exists()


def test_dry_run_reports_without_removing(populated_store):
    store, key, _ = populated_store
    orphan = store.path_for(key).with_suffix(".json.xyz.tmp")
    orphan.write_text("{}")

    report = collect_garbage(store, min_age_s=0.0, dry_run=True, now=LATER)
    assert report.dry_run
    assert report.tmp_removed == [str(orphan)]
    assert orphan.exists()  # nothing actually deleted
    assert report.to_dict()["tmp_removed"] == [str(orphan)]


def test_unparseable_manifest_is_garbage(populated_store):
    store, _, _ = populated_store
    campaigns = store.root / "campaigns"
    campaigns.mkdir()
    torn = campaigns / "torn.json"
    torn.write_text('{"name": "torn", "jobs": {"k"')

    report = collect_garbage(store, min_age_s=0.0, now=LATER)
    assert report.manifests_removed == [str(torn)]
    assert not torn.exists()


def test_completed_manifest_removed_only_on_request(populated_store):
    store, key, _ = populated_store
    manifest = CampaignManifest(store.root, "finished")
    manifest.begin({"name": "finished"}, "spec-key", [key])
    manifest.record(key, "done")
    in_flight = CampaignManifest(store.root, "running")
    in_flight.begin({"name": "running"}, "spec-key-2", [key, "other-key"])
    in_flight.record(key, "done")  # "other-key" still pending

    default = collect_garbage(store, min_age_s=0.0, now=LATER)
    assert default.manifests_removed == []

    opted_in = collect_garbage(
        store, min_age_s=0.0, remove_completed_manifests=True, now=LATER
    )
    assert opted_in.manifests_removed == [str(manifest.path)]
    assert not manifest.path.exists()
    assert in_flight.path.exists()  # pending jobs keep it alive


def test_gc_never_touches_trial_entries(populated_store):
    store, key, metrics = populated_store
    report = collect_garbage(store, min_age_s=0.0, now=LATER)
    assert report.removed == 0
    assert store.get(key).to_dict() == metrics.to_dict()
    assert json.loads(store.path_for(key).read_text())["key"] == key
