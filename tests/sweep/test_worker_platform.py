"""Platform guard: job execution where SIGALRM is unavailable.

The SIGALRM machinery lives in :mod:`repro.api` (``run_trials`` owns
timeout enforcement); the sweep worker only reports whether the budget
it requested was actually guarded.  These tests therefore patch the
``repro.api`` module, not the worker.
"""

from repro import api
from repro.sweep import worker as worker_module
from repro.sweep.keys import config_to_dict
from repro.core.parameters import SimulationConfig


def _payload(timeout_s=None) -> dict:
    config = SimulationConfig(num_runs=3, num_disks=2, blocks_per_run=20, trials=1)
    payload = {"config": config_to_dict(config), "trial": 0}
    if timeout_s is not None:
        payload["timeout_s"] = timeout_s
    return payload


def test_timeout_enforced_on_posix():
    assert api.HAVE_SIGALRM  # the CI/dev platforms are POSIX
    assert worker_module.HAVE_SIGALRM  # re-export stays in sync
    result = worker_module.execute_job(_payload(timeout_s=60.0))
    assert result["timeout_enforced"] is True
    assert result["metrics"]["blocks_depleted"] == 60


def test_without_sigalrm_job_runs_unguarded(monkeypatch):
    monkeypatch.setattr(api, "HAVE_SIGALRM", False)

    def explode(*args, **kwargs):  # pragma: no cover - failure branch
        raise AssertionError("signal API used despite missing SIGALRM")

    monkeypatch.setattr(api.signal, "signal", explode)
    monkeypatch.setattr(api.signal, "setitimer", explode)
    result = worker_module.execute_job(_payload(timeout_s=0.001))
    # The job completes (no timeout enforced) and says so.
    assert result["timeout_enforced"] is False
    assert result["metrics"]["blocks_depleted"] == 60


def test_no_timeout_requested_reports_enforced(monkeypatch):
    # Nothing to enforce: the flag must not read as "unguarded".
    monkeypatch.setattr(api, "HAVE_SIGALRM", False)
    result = worker_module.execute_job(_payload())
    assert result["timeout_enforced"] is True


def test_batch_results_report_enforcement(monkeypatch):
    monkeypatch.setattr(api, "HAVE_SIGALRM", False)
    payload = _payload(timeout_s=0.001)
    payload["trials"] = [0, 1]
    del payload["trial"]
    results = worker_module.execute_batch(payload)
    assert len(results) == 2
    assert all(r["timeout_enforced"] is False for r in results)
    assert all(r["metrics"]["blocks_depleted"] == 60 for r in results)
