"""SweepStats / SweepResult serialize -> deserialize symmetry (RPR004).

These types were the tree's original RPR004 findings: ``to_dict`` with
no inverse.  The round-trips here pin the fix — an exported sweep
result reloads into an equal object graph.
"""

from repro.core.parameters import PrefetchStrategy
from repro.sweep.engine import JobFailure, SweepEngine, SweepResult
from repro.sweep.progress import SweepStats
from repro.sweep.spec import SweepSpec


def _small_spec():
    return SweepSpec(
        name="roundtrip",
        base={
            "num_runs": 4,
            "strategy": PrefetchStrategy.INTER_RUN,
            "prefetch_depth": 2,
            "blocks_per_run": 20,
        },
        grid={"num_disks": [1, 2]},
        trials=2,
        base_seed=7,
    )


def test_sweep_stats_round_trip():
    stats = SweepStats(total=10, cached=4, computed=5, failed=1,
                       retries=2, wall_s=1.5, sim_s=3.0, started_at=123.0)
    reloaded = SweepStats.from_dict(stats.to_dict())
    assert reloaded == stats
    # derived keys are recomputed, not stored state
    assert reloaded.to_dict()["cache_hit_ratio"] == stats.cache_hit_ratio


def test_sweep_result_round_trip_from_a_real_run():
    result = SweepEngine(store=None).run_spec(_small_spec())
    reloaded = SweepResult.from_dict(result.to_dict())
    assert reloaded.to_dict() == result.to_dict()
    # enum values reload as their string spellings in `base`; the specs
    # are semantically identical, which is what the cells prove
    assert reloaded.spec.cells() == result.spec.cells()
    assert [cell.total_time_s.mean for cell in reloaded.cells] == [
        cell.total_time_s.mean for cell in result.cells
    ]


def test_sweep_result_round_trip_preserves_failures():
    result = SweepResult(
        spec=_small_spec(),
        cells=[],
        stats=SweepStats(total=1, failed=1),
        failures=[JobFailure(index=0, key="abc", description="cell 0",
                             attempts=2, error="ValueError: boom")],
    )
    reloaded = SweepResult.from_dict(result.to_dict())
    assert reloaded.failures == result.failures
    assert reloaded.to_dict() == result.to_dict()
