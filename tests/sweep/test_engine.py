"""SweepEngine: determinism, caching, resume, retries, timeouts."""

import json

import pytest

from repro.core.parameters import SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.sweep import (
    NullProgress,
    ResultStore,
    SweepEngine,
    SweepError,
    SweepSpec,
    SweepStats,
)
from repro.sweep.worker import JobTimeoutError, execute_job

#: 12 cells x 2 trials = 24 jobs — covers the ">= 20 jobs, workers=4"
#: acceptance criterion while staying fast (30-block runs).
SPEC = SweepSpec(
    name="engine-test",
    base={"num_runs": 4, "strategy": "intra-run", "blocks_per_run": 30},
    grid={
        "num_disks": [1, 2],
        "prefetch_depth": [1, 2, 3],
        "synchronized": [False, True],
    },
    trials=2,
    base_seed=5,
)


def _serial_reference(spec):
    return [MergeSimulation(config).run() for config in spec.cells()]


def _dump(cells):
    return json.dumps([cell.to_dict() for cell in cells])


def test_parallel_sweep_matches_serial_byte_for_byte(tmp_path):
    engine = SweepEngine(store=ResultStore(tmp_path), workers=4)
    result = engine.run_spec(SPEC)
    assert len(SPEC.jobs()) >= 20
    assert result.stats.computed == len(SPEC.jobs())
    assert _dump(result.cells) == _dump(_serial_reference(SPEC))


def test_rerun_is_all_cache_hits_and_identical(tmp_path):
    store = ResultStore(tmp_path)
    first = SweepEngine(store=store, workers=2).run_spec(SPEC)
    second = SweepEngine(store=store, workers=2).run_spec(SPEC)
    assert second.stats.computed == 0
    assert second.stats.cached == second.stats.total == len(SPEC.jobs())
    assert second.stats.cache_hit_ratio == 1.0
    assert _dump(second.cells) == _dump(first.cells)


def test_interrupted_campaign_resumes_remaining_jobs_only(tmp_path):
    store = ResultStore(tmp_path)
    jobs = SPEC.jobs()
    full = SweepEngine(store=store, workers=2).run_spec(SPEC)

    # Simulate a kill mid-run: drop the cache entries of the last 10
    # jobs, as if they had never completed.
    for job in jobs[-10:]:
        store.path_for(job.key).unlink()

    resumed = SweepEngine(store=store, workers=2).run_spec(SPEC)
    assert resumed.stats.cached == len(jobs) - 10
    assert resumed.stats.computed == 10
    assert _dump(resumed.cells) == _dump(full.cells)


def test_inline_engine_matches_pool(tmp_path):
    pooled = SweepEngine(store=ResultStore(tmp_path / "a"), workers=4)
    inline = SweepEngine(store=ResultStore(tmp_path / "b"), workers=1)
    assert _dump(pooled.run_spec(SPEC).cells) == _dump(inline.run_spec(SPEC).cells)


def test_uncached_engine_recomputes_every_time():
    engine = SweepEngine(store=None, workers=1)
    small = SweepSpec(base={"num_runs": 2, "num_disks": 1,
                            "blocks_per_run": 20}, trials=2)
    first = engine.run_spec(small)
    second = engine.run_spec(small)
    assert first.stats.computed == second.stats.computed == 2


def test_run_config_equals_merge_simulation(tmp_path):
    config = SimulationConfig(num_runs=3, num_disks=2, blocks_per_run=25,
                              trials=3, base_seed=42)
    engine = SweepEngine(store=ResultStore(tmp_path), workers=2)
    via_engine = engine.run_config(config)
    serial = MergeSimulation(config).run()
    assert json.dumps(via_engine.to_dict()) == json.dumps(serial.to_dict())


def test_backend_routes_merge_simulation_through_engine(tmp_path):
    config = SimulationConfig(num_runs=3, num_disks=1, blocks_per_run=25,
                              trials=2)
    store = ResultStore(tmp_path)
    engine = SweepEngine(store=store, workers=1)
    with engine.backend():
        first = MergeSimulation(config).run()
        second = MergeSimulation(config).run()
    # Second call inside the backend was served from the cache.
    assert len(store) == config.trials
    assert json.dumps(first.to_dict()) == json.dumps(second.to_dict())
    # Outside the context the serial path is back and matches.
    serial = MergeSimulation(config).run()
    assert json.dumps(serial.to_dict()) == json.dumps(first.to_dict())


def test_failures_are_retried_then_raised(monkeypatch):
    calls = {"n": 0}

    def flaky(payload):
        calls["n"] += 1
        raise RuntimeError("worker crashed")

    monkeypatch.setattr("repro.sweep.engine.execute_job", flaky)
    spec = SweepSpec(base={"num_runs": 2, "num_disks": 1,
                           "blocks_per_run": 20}, trials=1)
    engine = SweepEngine(store=None, workers=1, retries=2)
    with pytest.raises(SweepError, match="worker crashed"):
        engine.run_spec(spec)
    assert calls["n"] == 3  # initial attempt + 2 retries


def test_transient_failure_recovers_on_retry(monkeypatch, tmp_path):
    calls = {"n": 0}

    def flaky_once(payload):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return execute_job(payload)

    monkeypatch.setattr("repro.sweep.engine.execute_job", flaky_once)
    spec = SweepSpec(base={"num_runs": 2, "num_disks": 1,
                           "blocks_per_run": 20}, trials=1)
    engine = SweepEngine(store=ResultStore(tmp_path), workers=1, retries=1)
    result = engine.run_spec(spec)
    assert result.stats.computed == 1
    assert result.stats.retries == 1
    assert not result.failures


def test_allow_partial_keeps_surviving_cells(monkeypatch):
    def always_fail(payload):
        raise RuntimeError("boom")

    monkeypatch.setattr("repro.sweep.engine.execute_job", always_fail)
    spec = SweepSpec(base={"num_runs": 2, "num_disks": 1,
                           "blocks_per_run": 20}, trials=1)
    engine = SweepEngine(store=None, workers=1, retries=0, allow_partial=True)
    result = engine.run_spec(spec)
    assert result.stats.failed == 1
    assert len(result.failures) == 1
    assert result.cells[0].trials == []


def test_per_job_timeout_fails_the_job():
    # A long simulation against a tiny wall-clock budget.
    spec = SweepSpec(
        base={"num_runs": 20, "num_disks": 1, "blocks_per_run": 2000},
        trials=1,
    )
    engine = SweepEngine(store=None, workers=1, timeout_s=0.01, retries=0,
                         allow_partial=True)
    result = engine.run_spec(spec)
    assert result.stats.failed == 1
    assert "JobTimeoutError" in result.failures[0].error


def test_worker_timeout_cleans_up_alarm():
    import signal

    config = SimulationConfig(num_runs=2, num_disks=1, blocks_per_run=20,
                              trials=1)
    from repro.sweep.keys import config_to_dict

    payload = {"config": config_to_dict(config), "trial": 0, "timeout_s": 30.0}
    execute_job(payload)
    # The itimer must be disarmed after a successful run.
    assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)


def test_stats_counters_and_export(tmp_path):
    stats = SweepStats(total=4)
    stats.count("computed")
    stats.count("cached")
    stats.count("failed")
    stats.wall_s = 2.0
    assert stats.done == 3
    assert stats.throughput == pytest.approx(1.5)
    path = stats.export_json(tmp_path / "stats.json")
    payload = json.loads(path.read_text())
    assert payload["computed"] == 1
    assert payload["cache_hit_ratio"] == 0.25
    with pytest.raises(ValueError):
        stats.count("bogus")


def test_progress_listener_receives_every_event(tmp_path):
    events = []

    class Recorder(NullProgress):
        def on_begin(self, stats):
            events.append(("begin", stats.total))

        def on_job(self, job, outcome, stats):
            events.append((outcome, job.index))

        def on_end(self, stats):
            events.append(("end", stats.done))

    spec = SweepSpec(base={"num_runs": 2, "num_disks": 1,
                           "blocks_per_run": 20}, trials=2)
    engine = SweepEngine(store=ResultStore(tmp_path), workers=1,
                         progress=Recorder())
    engine.run_spec(spec)
    assert events[0] == ("begin", 2)
    assert events[-1] == ("end", 2)
    assert ("computed", 0) in events and ("computed", 1) in events
