"""Cache-key stability and config serialization round-trips."""

import pytest

from repro.core.parameters import (
    CachePolicy,
    DiskParameters,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
)
from repro.disks.drive import QueueDiscipline
from repro.sweep.keys import (
    cache_key,
    coerce_params,
    config_from_dict,
    config_to_dict,
)

BASE = dict(num_runs=8, num_disks=2, strategy=PrefetchStrategy.INTRA_RUN,
            prefetch_depth=3, blocks_per_run=50)


def test_same_config_and_seed_give_same_key():
    a = SimulationConfig(**BASE)
    b = SimulationConfig(**BASE)
    assert cache_key(a, 7) == cache_key(b, 7)


def test_key_ignores_trials_and_base_seed():
    # The cache works at trial granularity: only the per-trial seed
    # matters, so a 10-trial sweep reuses a 5-trial sweep's entries.
    a = SimulationConfig(trials=5, base_seed=1, **BASE)
    b = SimulationConfig(trials=10, base_seed=999, **BASE)
    assert cache_key(a, 7) == cache_key(b, 7)


def test_seed_changes_key():
    config = SimulationConfig(**BASE)
    assert cache_key(config, 7) != cache_key(config, 8)


@pytest.mark.parametrize("change", [
    {"num_runs": 9},
    {"num_disks": 3},
    {"strategy": PrefetchStrategy.INTER_RUN},
    {"prefetch_depth": 4},
    {"blocks_per_run": 51},
    {"cache_capacity": 200},
    {"synchronized": True},
    {"cpu_ms_per_block": 0.1},
    {"cache_policy": CachePolicy.GREEDY},
    {"victim_selector": VictimSelector.ROUND_ROBIN},
    {"queue_discipline": QueueDiscipline.SSTF},
    {"stream_across_requests": True},
    {"adaptive_depth": True},
    {"write_disks": 1},
    {"record_timelines": True},
    {"disk": DiskParameters(transfer_ms_per_block=1.0)},
])
def test_any_parameter_change_changes_key(change):
    base = SimulationConfig(**BASE)
    changed = SimulationConfig(**{**BASE, **change})
    assert cache_key(base, 7) != cache_key(changed, 7)


def test_config_dict_round_trip():
    config = SimulationConfig(
        cache_capacity=300,
        synchronized=True,
        cache_policy=CachePolicy.GREEDY,
        victim_selector=VictimSelector.NEAREST_HEAD,
        queue_discipline=QueueDiscipline.SSTF,
        disk=DiskParameters(seek_ms_per_cylinder=0.05),
        **{**BASE, "strategy": PrefetchStrategy.INTER_RUN},
    )
    assert config_from_dict(config_to_dict(config)) == config


def test_coerce_params_accepts_strings_and_dicts():
    params = coerce_params({
        "strategy": "inter-run",
        "cache_policy": "greedy",
        "disk": {"seek_ms_per_cylinder": 0.05,
                 "avg_rotational_latency_ms": 8.33,
                 "transfer_ms_per_block": 2.05},
        "num_runs": 5,
    })
    assert params["strategy"] is PrefetchStrategy.INTER_RUN
    assert params["cache_policy"] is CachePolicy.GREEDY
    assert isinstance(params["disk"], DiskParameters)
    assert params["num_runs"] == 5


def test_coerce_params_passes_enums_through():
    params = coerce_params({"strategy": PrefetchStrategy.NONE})
    assert params["strategy"] is PrefetchStrategy.NONE


def test_field_inventory_covers_the_dataclass_exactly():
    # The runtime half of lint rule RPR003: every SimulationConfig
    # field is either folded into the cache key (KNOWN_CONFIG_FIELDS)
    # or deliberately excluded (KEY_EXCLUDED_FIELDS) -- never both,
    # never neither.  Adding a field without updating keys.py fails
    # here *and* under `repro lint`.
    import dataclasses

    from repro.sweep.keys import KEY_EXCLUDED_FIELDS, KNOWN_CONFIG_FIELDS

    field_names = {f.name for f in dataclasses.fields(SimulationConfig)}
    assert set(KNOWN_CONFIG_FIELDS) | set(KEY_EXCLUDED_FIELDS) == field_names
    assert not set(KNOWN_CONFIG_FIELDS) & set(KEY_EXCLUDED_FIELDS)
