"""ResultStore and CampaignManifest behaviour."""

import json

import pytest

from repro.core.parameters import SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.sweep import (
    CampaignManifest,
    ResultStore,
    cache_key,
    compute_key,
    lookup,
)


@pytest.fixture
def metrics_and_key():
    config = SimulationConfig(num_runs=3, num_disks=1, blocks_per_run=20,
                              trials=1)
    metrics = MergeSimulation(config).run_trial(trial=0)
    return metrics, cache_key(config, config.base_seed)


def test_put_get_round_trip(tmp_path, metrics_and_key):
    metrics, key = metrics_and_key
    store = ResultStore(tmp_path)
    assert store.get(key) is None
    assert key not in store
    store.put(key, metrics, seed=1992, elapsed_s=0.1)
    assert key in store
    restored = store.get(key)
    assert restored is not None
    assert restored.to_dict() == metrics.to_dict()
    assert list(store.keys()) == [key]
    assert len(store) == 1


def test_corrupt_entry_reads_as_miss(tmp_path, metrics_and_key):
    metrics, key = metrics_and_key
    store = ResultStore(tmp_path)
    path = store.put(key, metrics)
    path.write_text("{ truncated")
    assert store.get(key) is None


def test_schema_mismatch_reads_as_miss(tmp_path, metrics_and_key):
    metrics, key = metrics_and_key
    store = ResultStore(tmp_path)
    path = store.put(key, metrics)
    payload = json.loads(path.read_text())
    payload["schema"] = -1
    path.write_text(json.dumps(payload))
    assert store.get(key) is None


def test_purge_removes_everything(tmp_path, metrics_and_key):
    metrics, key = metrics_and_key
    store = ResultStore(tmp_path)
    store.put(key, metrics)
    assert store.purge() == 1
    assert len(store) == 0


def test_manifest_checkpoints_and_resumes(tmp_path):
    manifest = CampaignManifest(tmp_path, "camp")
    manifest.begin({"name": "camp"}, "spec-hash", ["k1", "k2", "k3"])
    manifest.record("k1", "done")
    assert manifest.counts() == {"done": 1, "pending": 2}

    # A fresh manifest object (new process) resumes completed keys.
    resumed = CampaignManifest(tmp_path, "camp")
    resumed.begin({"name": "camp"}, "spec-hash", ["k1", "k2", "k3"])
    assert resumed.counts() == {"done": 1, "pending": 2}


def test_manifest_rejects_spec_change_under_same_name(tmp_path):
    manifest = CampaignManifest(tmp_path, "camp")
    manifest.begin({}, "spec-hash", ["k1"])
    other = CampaignManifest(tmp_path, "camp")
    with pytest.raises(ValueError, match="different"):
        other.begin({}, "other-hash", ["k1"])


class TestPublicKeyHelpers:
    """compute_key/lookup: the public spelling every consumer shares."""

    def test_compute_key_matches_engine_derivation(self):
        config = SimulationConfig(num_runs=3, num_disks=1, blocks_per_run=20,
                                  trials=3, base_seed=41)
        for trial in range(config.trials):
            assert compute_key(config, trial) == cache_key(
                config, config.base_seed + trial
            )

    def test_compute_key_matches_sweep_jobs(self):
        from repro.sweep.spec import jobs_for_config

        config = SimulationConfig(num_runs=3, num_disks=2, blocks_per_run=20,
                                  trials=2)
        for job in jobs_for_config(config):
            assert job.key == compute_key(config, job.trial)

    def test_lookup_round_trip(self, tmp_path, metrics_and_key):
        metrics, _ = metrics_and_key
        config = SimulationConfig(num_runs=3, num_disks=1, blocks_per_run=20,
                                  trials=1)
        store = ResultStore(tmp_path)
        assert lookup(config, store=store) is None
        store.put(compute_key(config, 0), metrics)
        restored = lookup(config, store=store)
        assert restored is not None
        assert restored.to_dict() == metrics.to_dict()


class TestAtomicWrites:
    """A crash mid-write must never corrupt or shadow an entry."""

    def test_crash_mid_write_leaves_no_entry(self, tmp_path, metrics_and_key,
                                             monkeypatch):
        metrics, key = metrics_and_key
        store = ResultStore(tmp_path)

        def exploding_dump(payload, handle, **kwargs):
            handle.write('{"schema": ')  # partial bytes hit the temp file
            raise OSError("disk full")

        monkeypatch.setattr("repro.sweep.store.json.dump", exploding_dump)
        with pytest.raises(OSError, match="disk full"):
            store.put(key, metrics)
        monkeypatch.undo()
        assert store.get(key) is None
        assert list(store.keys()) == []
        # The failed temp file was cleaned up, not left to accumulate.
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []

    def test_crash_mid_write_preserves_previous_entry(self, tmp_path,
                                                      metrics_and_key,
                                                      monkeypatch):
        metrics, key = metrics_and_key
        store = ResultStore(tmp_path)
        store.put(key, metrics, seed=1992)
        before = store.path_for(key).read_bytes()

        def exploding_dump(payload, handle, **kwargs):
            handle.write("garbage")
            raise OSError("disk full")

        monkeypatch.setattr("repro.sweep.store.json.dump", exploding_dump)
        with pytest.raises(OSError, match="disk full"):
            store.put(key, metrics, seed=1992)
        monkeypatch.undo()
        # The old entry is intact, byte for byte.
        assert store.path_for(key).read_bytes() == before
        assert store.get(key) is not None
