"""SweepSpec expansion: order, seeds, coercion, serialization."""

import pytest

from repro.core.parameters import PrefetchStrategy
from repro.sweep import SweepSpec, cache_key, jobs_for_config
from repro.core.parameters import SimulationConfig

SPEC = SweepSpec(
    name="t",
    base={"num_runs": 4, "strategy": "intra-run", "blocks_per_run": 30},
    grid={"num_disks": [1, 2], "prefetch_depth": [2, 3]},
    trials=2,
    base_seed=11,
)


def test_cells_expand_in_cross_product_order():
    cells = SPEC.cells()
    assert [(c.num_disks, c.prefetch_depth) for c in cells] == [
        (1, 2), (1, 3), (2, 2), (2, 3),
    ]
    assert all(c.strategy is PrefetchStrategy.INTRA_RUN for c in cells)
    assert all(c.trials == 2 and c.base_seed == 11 for c in cells)


def test_jobs_enumerate_trials_with_serial_seeds():
    jobs = SPEC.jobs()
    assert len(jobs) == 8
    assert [j.index for j in jobs] == list(range(8))
    assert [j.trial for j in jobs] == [0, 1] * 4
    assert [j.cell for j in jobs] == [0, 0, 1, 1, 2, 2, 3, 3]
    # Seeds match the serial path: base_seed + trial.
    assert all(j.seed == 11 + j.trial for j in jobs)
    # Keys are precomputed content addresses.
    assert all(j.key == cache_key(j.config, j.seed) for j in jobs)


def test_jobs_for_config_matches_trial_count():
    config = SimulationConfig(num_runs=3, num_disks=1, trials=3,
                              blocks_per_run=20)
    jobs = jobs_for_config(config)
    assert [(j.cell, j.trial) for j in jobs] == [(0, 0), (0, 1), (0, 2)]


def test_spec_dict_round_trip_preserves_expansion():
    restored = SweepSpec.from_dict(SPEC.to_dict())
    assert restored.spec_key() == SPEC.spec_key()
    assert [j.key for j in restored.jobs()] == [j.key for j in SPEC.jobs()]


def test_spec_key_changes_with_grid():
    other = SweepSpec(
        name="t", base=SPEC.base,
        grid={"num_disks": [1, 2], "prefetch_depth": [2, 4]},
        trials=2, base_seed=11,
    )
    assert other.spec_key() != SPEC.spec_key()


def test_overlapping_base_and_grid_rejected():
    with pytest.raises(ValueError, match="both base and grid"):
        SweepSpec(base={"num_disks": 1}, grid={"num_disks": [1, 2]})


def test_empty_grid_axis_rejected():
    with pytest.raises(ValueError, match="no values"):
        SweepSpec(base={"num_runs": 2}, grid={"num_disks": []})


def test_gridless_spec_is_single_cell():
    spec = SweepSpec(base={"num_runs": 2, "num_disks": 1}, trials=3)
    assert len(spec.cells()) == 1
    assert len(spec.jobs()) == 3
