"""Configuration loading: pyproject overrides and the 3.10 TOML fallback."""

import pytest

from repro.lint.config import (
    LintConfig,
    _fallback_load,
    _fallback_parse_table,
    find_project_root,
    load_config,
)


def test_defaults_without_pyproject(tmp_path):
    config = load_config(tmp_path)
    assert config.paths == ["src"]
    assert config.baseline == "lint-baseline.json"
    assert "repro/sim" in config.determinism_modules
    assert config.config_class == "SimulationConfig"


def test_pyproject_overrides_apply(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\n"
        'paths = ["lib"]\n'
        'disable = ["RPR008"]\n'
        'slots-modules = ["lib/hot.py"]\n',
        encoding="utf-8",
    )
    config = load_config(tmp_path)
    assert config.paths == ["lib"]
    assert config.is_disabled("RPR008")
    assert config.slots_modules == ["lib/hot.py"]
    # untouched keys keep their defaults
    assert config.baseline == "lint-baseline.json"


def test_wrongly_typed_value_is_rejected(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\npaths = "src"\n', encoding="utf-8"
    )
    with pytest.raises(ValueError, match="must be a list"):
        load_config(tmp_path)


def test_real_pyproject_matches_the_shipped_defaults():
    # The committed [tool.repro-lint] table spells out the defaults for
    # self-documentation; if either side drifts this catches it.
    from lint_helpers import REPO_ROOT

    assert load_config(REPO_ROOT) == LintConfig()


def test_fallback_parser_handles_the_shipped_table():
    # What Python 3.10 (no tomllib) must be able to read: strings,
    # flat string lists (including multi-line ones), comments.
    text = (
        "[project]\n"
        'name = "repro"\n'
        "[tool.repro-lint]\n"
        'baseline = "lint-baseline.json"  # comment\n'
        "disable = []\n"
        "determinism-modules = [\n"
        '    "repro/sim",\n'
        '    "repro/core",\n'
        "]\n"
        "[tool.other]\n"
        'baseline = "not-this-one.json"\n'
    )
    table = _fallback_parse_table(text, "tool.repro-lint")
    assert table == {
        "baseline": "lint-baseline.json",
        "disable": [],
        "determinism-modules": ["repro/sim", "repro/core"],
    }


def test_fallback_parser_agrees_with_tomllib_on_the_real_file():
    # Covers the nested [tool.repro-lint.layers] sub-table too: the
    # 3.10 fallback must see exactly what tomllib sees.
    import tomllib

    from lint_helpers import REPO_ROOT

    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    expected = tomllib.loads(text).get("tool", {}).get("repro-lint", {})
    assert _fallback_load(text) == expected


def test_fallback_parser_reads_nested_layer_tables():
    text = (
        "[tool.repro-lint]\n"
        'layer-order = ["low", "high"]\n'
        "[tool.repro-lint.layers]\n"
        'low = ["pkg/core"]\n'
        "high = [\n"
        '    "pkg/cli.py",\n'
        "]\n"
    )
    assert _fallback_load(text) == {
        "layer-order": ["low", "high"],
        "layers": {"low": ["pkg/core"], "high": ["pkg/cli.py"]},
    }


def test_layers_must_be_a_table(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\nlayers = ["model"]\n', encoding="utf-8"
    )
    with pytest.raises(ValueError, match="must be a table"):
        load_config(tmp_path)


def test_find_project_root_walks_up(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\n", encoding="utf-8")
    nested = tmp_path / "src" / "repro" / "sim"
    nested.mkdir(parents=True)
    assert find_project_root(nested) == tmp_path
