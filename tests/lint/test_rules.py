"""Golden-fixture tests: every rule id, firing and non-firing.

Each fixture under ``fixtures/`` carries ``# expect:`` markers on its
violating lines; the test asserts the rule reports *exactly* those
lines (rule id, line number, severity, path) with messages containing
the marker text — and nothing else, which is the non-firing half: the
"good" sections of every fixture are unmarked and must stay silent.
"""

import pytest

from lint_helpers import (
    FIXTURES,
    expected_markers,
    load_fixture,
    module_from_source,
    run_model_rule,
    run_rule,
)
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintEngine
from repro.lint.findings import Severity
from repro.lint.registry import all_rules, get_rule, path_matches

#: (rule id, fixture file, fabricated repo path, expected severity).
GOLDEN_CASES = [
    ("RPR001", "rpr001_determinism.py",
     "src/repro/sim/lint_fixture.py", Severity.ERROR),
    ("RPR002", "rpr002_slots.py",
     "src/repro/sim/fast.py", Severity.ERROR),
    ("RPR004", "rpr004_serialization.py",
     "src/repro/bench/lint_fixture.py", Severity.ERROR),
    ("RPR005", "rpr005_ordering.py",
     "src/repro/disks/lint_fixture.py", Severity.ERROR),
    ("RPR006", "rpr006_excepts.py",
     "src/repro/sweep/lint_fixture.py", Severity.WARNING),
    ("RPR007", "rpr007_defaults.py",
     "src/repro/mergesort/lint_fixture.py", Severity.ERROR),
    ("RPR008", "rpr008_print.py",
     "src/repro/analysis/lint_fixture.py", Severity.WARNING),
    ("RPR009", "rpr009_overrides.py",
     "src/repro/experiments/lint_fixture.py", Severity.ERROR),
]


@pytest.mark.parametrize(
    "rule_id,fixture,relpath,severity",
    GOLDEN_CASES,
    ids=[case[0] for case in GOLDEN_CASES],
)
def test_rule_reports_exactly_the_marked_lines(
    rule_id, fixture, relpath, severity
):
    module = load_fixture(fixture, relpath)
    expected = expected_markers(module)
    assert expected, f"{fixture} must mark at least one violation"
    findings = run_rule(rule_id, module)
    assert [f.line for f in findings] == [line for line, _ in expected]
    for finding, (line, substring) in zip(findings, expected):
        assert finding.rule == rule_id
        assert finding.line == line
        assert finding.path == relpath
        assert finding.severity is severity
        assert substring in finding.message


#: Model-scope concurrency rules: (rule id, fixture, fabricated path).
#: RPR010 has its own fixture *package* and suite in test_layering.py.
MODEL_GOLDEN_CASES = [
    ("RPR011", "rpr011_async.py", "src/repro/serve/lint_fixture.py"),
    ("RPR012", "rpr012_locks.py", "src/repro/realio/lint_fixture.py"),
    ("RPR013", "rpr013_tasks.py", "src/repro/serve/lint_fixture.py"),
]


@pytest.mark.parametrize(
    "rule_id,fixture,relpath",
    MODEL_GOLDEN_CASES,
    ids=[case[0] for case in MODEL_GOLDEN_CASES],
)
def test_model_rule_reports_exactly_the_marked_lines(
    rule_id, fixture, relpath
):
    module = load_fixture(fixture, relpath)
    expected = expected_markers(module)
    assert expected, f"{fixture} must mark at least one violation"
    findings = run_model_rule(rule_id, [module])
    assert [f.line for f in findings] == [line for line, _ in expected]
    for finding, (line, substring) in zip(findings, expected):
        assert finding.rule == rule_id
        assert finding.line == line
        assert finding.path == relpath
        assert finding.severity is Severity.ERROR
        assert substring in finding.message


#: The same fixtures fabricated outside the rules' configured packages.
MODEL_OUT_OF_SCOPE = [
    ("RPR011", "rpr011_async.py", "src/repro/analysis/lint_fixture.py"),
    ("RPR012", "rpr012_locks.py", "src/repro/sim/lint_fixture.py"),
    ("RPR013", "rpr013_tasks.py", "src/repro/analysis/lint_fixture.py"),
]


@pytest.mark.parametrize(
    "rule_id,fixture,relpath",
    MODEL_OUT_OF_SCOPE,
    ids=[case[0] for case in MODEL_OUT_OF_SCOPE],
)
def test_model_rule_is_silent_outside_its_modules(rule_id, fixture, relpath):
    module = load_fixture(fixture, relpath)
    assert run_model_rule(rule_id, [module]) == []


@pytest.mark.parametrize(
    "rule_id,fixture,relpath",
    MODEL_GOLDEN_CASES,
    ids=[case[0] for case in MODEL_GOLDEN_CASES],
)
def test_inline_disable_suppresses_model_findings(
    tmp_path, rule_id, fixture, relpath
):
    # Append a disable comment to every marked line and run the full
    # engine: the suppression must travel from file text to model-rule
    # findings, which land after the per-file pass.
    lines = (FIXTURES / fixture).read_text(encoding="utf-8").splitlines()
    marked = [i for i, line in enumerate(lines) if "# expect:" in line]
    assert marked
    for index in marked:
        lines[index] += f"  # repro-lint: disable={rule_id}"
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\ndisable = ["RPR003"]\n', encoding="utf-8"
    )
    target = tmp_path / relpath
    target.parent.mkdir(parents=True)
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    report = LintEngine(load_config(tmp_path), tmp_path).run()
    assert [f for f in report.findings if f.rule == rule_id] == []
    assert report.suppressed == len(marked)


def test_transitive_blocking_chain_crosses_module_boundaries():
    # The helper chain lives two modules away from the coroutine; the
    # finding must land on the call line *inside* the coroutine and
    # name the full chain to the sink.
    handler = module_from_source(
        "from repro.serve.storage import persist\n"
        "async def handle(payload):\n"
        "    return persist(payload)\n",
        "src/repro/serve/handlers.py",
    )
    storage = module_from_source(
        "from repro.serve.diskio import flush\n"
        "def persist(payload):\n"
        "    return flush(payload)\n",
        "src/repro/serve/storage.py",
    )
    diskio = module_from_source(
        "def flush(payload):\n"
        "    with open('state.json', 'w') as handle:\n"
        "        handle.write(payload)\n",
        "src/repro/serve/diskio.py",
    )
    findings = run_model_rule("RPR011", [handler, storage, diskio])
    assert len(findings) == 1
    finding = findings[0]
    assert finding.path == "src/repro/serve/handlers.py"
    assert finding.line == 3
    assert "handle -> persist -> flush" in finding.message
    assert "repro.serve.diskio:2" in finding.message


#: Scoped rules go silent when the same fixture lives outside their
#: configured modules.
OUT_OF_SCOPE_CASES = [
    ("RPR001", "rpr001_determinism.py", "src/repro/analysis/tools.py"),
    ("RPR001", "rpr001_determinism.py", "src/repro/sim/random_streams.py"),
    ("RPR002", "rpr002_slots.py", "src/repro/sim/engine.py"),
    ("RPR005", "rpr005_ordering.py", "src/repro/sweep/lint_fixture.py"),
    ("RPR008", "rpr008_print.py", "src/repro/cli.py"),
]


@pytest.mark.parametrize(
    "rule_id,fixture,relpath",
    OUT_OF_SCOPE_CASES,
    ids=[f"{c[0]}-{c[2].rsplit('/', 1)[1]}" for c in OUT_OF_SCOPE_CASES],
)
def test_scoped_rule_is_silent_outside_its_modules(rule_id, fixture, relpath):
    assert run_rule(rule_id, load_fixture(fixture, relpath)) == []


def test_retired_overrides_flagged_even_in_the_old_shim_module():
    # The shims were deleted from repro.core.simulator, and with them
    # the carve-out: RPR009 now fires everywhere, shim module included.
    module = load_fixture(
        "rpr009_overrides.py", "src/repro/core/simulator.py"
    )
    findings = run_rule("RPR009", module)
    assert findings, "RPR009 must fire inside repro/core/simulator.py too"
    assert all("retired override shim" in f.message for f in findings)


def test_broad_except_needs_retry_scope_but_bare_except_does_not():
    # Outside the broad-except modules the catch-all stops firing while
    # the universal checks (bare except, swallowed failure) remain.
    module = load_fixture("rpr006_excepts.py", "src/repro/analysis/tools.py")
    messages = [f.message for f in run_rule("RPR006", module)]
    assert len(messages) == 2
    assert any("bare except" in message for message in messages)
    assert any("pass-only body" in message for message in messages)
    assert not any("worker/retry" in message for message in messages)


def test_registry_covers_all_thirteen_rules_with_stable_ids():
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == [
        f"RPR{index:03d}" for index in range(1, 14)
    ]
    assert all(rule.rationale for rule in rules)
    assert {rule.scope for rule in rules} == {"file", "project", "model"}
    assert get_rule("RPR003").scope == "project"
    for rule_id in ("RPR010", "RPR011", "RPR012", "RPR013"):
        assert get_rule(rule_id).scope == "model"


def test_unknown_rule_id_is_a_clear_error():
    with pytest.raises(ValueError, match="unknown lint rule"):
        get_rule("RPR999")


def test_path_matching_is_component_wise():
    prefixes = ["repro/sim", "repro/sim/fast.py"]
    assert path_matches("repro/sim/engine.py", prefixes)
    assert path_matches("repro/sim/fast.py", ["repro/sim/fast.py"])
    # a directory prefix must not match a sibling sharing the spelling
    assert not path_matches("repro/simulation/engine.py", ["repro/sim"])
    assert not path_matches("repro/sim/fast_extra.py", ["repro/sim/fast.py"])


def test_unseeded_random_outside_simulation_modules_is_allowed():
    source = "import random\nstream = random.Random()\n"
    module = module_from_source(source, "src/repro/analysis/tools.py")
    assert run_rule("RPR001", module) == []
    in_scope = module_from_source(source, "src/repro/disks/drive.py")
    assert [f.line for f in run_rule("RPR001", in_scope)] == [2]


def test_disabled_rule_is_skipped_by_config():
    config = LintConfig(disable=["RPR008"])
    assert config.is_disabled("RPR008")
    assert not config.is_disabled("RPR001")
