"""The engine over synthetic project trees: collection, suppression, RPR000."""

from repro.lint.config import load_config
from repro.lint.engine import PARSE_ERROR_RULE, LintEngine
from repro.lint.findings import Severity

#: RPR003 reads src/repro/core/parameters.py + src/repro/sweep/keys.py,
#: which synthetic trees do not have; disable it so these tests see
#: only the behaviour under test.
_PYPROJECT = '[tool.repro-lint]\ndisable = ["RPR003"]\n'


def _project(tmp_path, files):
    (tmp_path / "pyproject.toml").write_text(_PYPROJECT, encoding="utf-8")
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return LintEngine(load_config(tmp_path), tmp_path)


def test_inline_suppression_removes_and_counts_the_finding(tmp_path):
    engine = _project(tmp_path, {
        "src/repro/sim/clock.py": (
            "import time\n"
            "\n"
            "def poll():\n"
            "    return time.time()  # repro-lint: disable=RPR001\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
        ),
    })
    report = engine.run()
    assert [(f.rule, f.line) for f in report.findings] == [("RPR001", 7)]
    assert report.suppressed == 1


def test_file_level_suppression_covers_the_module(tmp_path):
    engine = _project(tmp_path, {
        "src/repro/analysis/narrate.py": (
            "# repro-lint: disable-file=RPR008\n"
            "def narrate(x):\n"
            "    print(x)\n"
            "    print(x, x)\n"
        ),
    })
    report = engine.run()
    assert report.findings == []
    assert report.suppressed == 2


def test_syntax_error_yields_rpr000_not_a_crash(tmp_path):
    engine = _project(tmp_path, {
        "src/repro/sim/broken.py": "def oops(:\n",
        "src/repro/sim/fine.py": "VALUE = 1\n",
    })
    report = engine.run()
    assert [f.rule for f in report.findings] == [PARSE_ERROR_RULE]
    finding = report.findings[0]
    assert finding.severity is Severity.ERROR
    assert finding.message.startswith("file does not parse:")
    assert report.files_scanned == 2  # the healthy file still linted


def test_collection_skips_caches_and_deduplicates(tmp_path):
    engine = _project(tmp_path, {
        "src/repro/sim/a.py": "VALUE = 1\n",
        "src/repro/sim/__pycache__/a.py": "VALUE = 2\n",
    })
    files = engine.collect_files(["src", "src/repro/sim/a.py"])
    assert [path.name for path in files] == ["a.py"]
    assert "__pycache__" not in {part for p in files for part in p.parts}


def test_a_source_package_named_dist_is_not_a_build_artifact(tmp_path):
    # `dist/` and `build/` are skipped as packaging output — unless they
    # are real Python packages (repro/dist is one). The __init__.py is
    # the discriminator.
    engine = _project(tmp_path, {
        "src/repro/dist/__init__.py": "",
        "src/repro/dist/leases.py": "VALUE = 1\n",
        "dist/repro-0.1-py3-none-any/junk.py": "VALUE = 2\n",
        "build/lib/other.py": "VALUE = 3\n",
    })
    files = engine.collect_files(["src", "dist", "build"])
    names = sorted(path.name for path in files)
    assert names == ["__init__.py", "leases.py"]


def test_findings_come_out_sorted_by_path_then_line(tmp_path):
    engine = _project(tmp_path, {
        "src/repro/sim/b.py": "import time\nNOW = time.time()\n",
        "src/repro/sim/a.py": (
            "import time\nX = time.time()\nY = time.time()\n"
        ),
    })
    report = engine.run()
    assert [(f.path, f.line) for f in report.findings] == [
        ("src/repro/sim/a.py", 2),
        ("src/repro/sim/a.py", 3),
        ("src/repro/sim/b.py", 2),
    ]
    assert report.rules_run == 12  # thirteen registered minus disabled RPR003
