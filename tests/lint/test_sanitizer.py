"""The runtime concurrency sanitizer: planted violations, clean paths.

Each rule gets one deliberately broken interleaving (which must be
recorded exactly once, through the standard findings pipeline) and one
legitimate path (which must stay silent).  Enable/disable symmetry is
load-bearing: the instrumentation must leave zero residue on the
patched classes after the last scope exits, or every other test in
this process would pay for it.
"""

import threading
from dataclasses import MISSING, fields

import pytest

from repro.core.cache import RunCacheState
from repro.core.metrics import MergeMetrics
from repro.dist.leases import LeaseManager
from repro.dist.shards import Shard
from repro.lint import sanitizer
from repro.lint.sanitizer import ConcurrencyViolation, OwnedLock
from repro.realio.pool import BufferPool
from repro.sweep.store import ResultStore


@pytest.fixture(autouse=True)
def _fresh_report():
    sanitizer.report().clear()
    yield
    sanitizer.report().clear()


def _metrics() -> MergeMetrics:
    """A structurally valid MergeMetrics (zeroed scalars, empty lists)."""
    kwargs = {}
    for f in fields(MergeMetrics):
        if f.default is not MISSING or f.default_factory is not MISSING:
            continue
        kwargs[f.name] = [] if f.name == "drive_stats" else 0
    metrics = MergeMetrics(**kwargs)
    metrics.to_dict()  # must serialize, or the puts never reach the disk
    return metrics


def _in_thread(target, name):
    thread = threading.Thread(target=target, name=name)
    thread.start()
    thread.join()


# -- RPR090: BufferPool / RunCacheState ---------------------------------------

def test_unlocked_pool_state_mutation_is_reported_once():
    with sanitizer.sanitized() as report:
        pool = BufferPool(4, [2, 2])
        pool.reserve(0, 1)  # the merge thread's own path takes the lock
        assert report.findings() == []

        def rogue():
            pool.runs[1].cached += 1

        _in_thread(rogue, "rogue")
        findings = report.findings()
        assert [f.rule for f in findings] == ["RPR090"]
        assert findings[0].path == sanitizer.RUNTIME_PATH
        assert "pool lock" in findings[0].message
        assert "'rogue'" in findings[0].message
        assert "RPR090" in findings[0].render()
        with pytest.raises(ConcurrencyViolation, match="RPR090"):
            report.check()


def test_simulators_own_cache_states_stay_untagged():
    # Only pool-owned states are tagged; the deterministic simulator's
    # single-threaded RunCacheState instances must cost nothing.
    with sanitizer.sanitized() as report:
        state = RunCacheState(0, 4)
        state.cached += 1
        assert report.findings() == []


# -- RPR091: LeaseManager ------------------------------------------------------

def test_lease_mutation_from_a_foreign_thread_is_reported_once():
    with sanitizer.sanitized() as report:
        manager = LeaseManager([
            Shard(shard_id="s0", jobs=()),
            Shard(shard_id="s1", jobs=()),
        ])
        manager.acquire("w0")  # first mutator binds this thread as owner
        assert report.findings() == []
        _in_thread(lambda: manager.acquire("w1"), "intruder")
        # acquire() sweeps expired leases internally: the nested mutator
        # must not double-report.
        findings = report.findings()
        assert [f.rule for f in findings] == ["RPR091"]
        assert "owned by another thread" in findings[0].message


# -- RPR092: ResultStore -------------------------------------------------------

def test_concurrent_same_key_puts_are_reported_once(tmp_path, monkeypatch):
    import repro.sweep.store as store_module

    real_write = store_module.atomic_write_json
    barrier = threading.Barrier(2, timeout=10)

    def rendezvous_write(path, payload):
        barrier.wait()  # both writers provably in flight at once
        real_write(path, payload)

    monkeypatch.setattr(store_module, "_atomic_write_json", rendezvous_write)
    with sanitizer.sanitized() as report:
        store = ResultStore(tmp_path)
        metrics = _metrics()
        writers = [
            threading.Thread(target=lambda: store.put("k", metrics),
                             name=f"writer-{i}")
            for i in range(2)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join()
        findings = report.findings()
        assert [f.rule for f in findings] == ["RPR092"]
        assert "cache key 'k'" in findings[0].message
        assert store.get("k") is not None  # the write itself stays atomic


def test_sequential_puts_of_the_same_key_are_silent(tmp_path):
    with sanitizer.sanitized() as report:
        store = ResultStore(tmp_path)
        metrics = _metrics()
        store.put("a", metrics)
        store.put("a", metrics)
        assert report.findings() == []


# -- activation surfaces -------------------------------------------------------

def test_disable_restores_the_patched_classes_exactly():
    before_setattr = RunCacheState.__setattr__
    before_init = BufferPool.__init__
    before_put = ResultStore.put
    before_acquire = LeaseManager.acquire
    with sanitizer.sanitized():
        assert sanitizer.is_enabled()
        assert RunCacheState.__setattr__ is not before_setattr
        assert LeaseManager.acquire.__wrapped__ is before_acquire
        with sanitizer.sanitized():  # nesting refcounts, never re-patches
            inner_put = ResultStore.put
        assert ResultStore.put is inner_put
        assert sanitizer.is_enabled()
    assert not sanitizer.is_enabled()
    assert RunCacheState.__setattr__ is before_setattr
    assert BufferPool.__init__ is before_init
    assert ResultStore.put is before_put
    assert LeaseManager.acquire is before_acquire


def test_configure_sanitize_scopes_the_instrumentation():
    from repro.api import configure

    assert not sanitizer.is_enabled()
    with configure(sanitize=True):
        assert sanitizer.is_enabled()
    assert not sanitizer.is_enabled()


def test_enable_from_env_honors_the_variable(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert sanitizer.enable_from_env() is False
    assert not sanitizer.is_enabled()
    monkeypatch.setenv("REPRO_SANITIZE", "yes")
    assert sanitizer.enable_from_env() is True
    try:
        assert sanitizer.is_enabled()
    finally:
        sanitizer.disable()
    assert not sanitizer.is_enabled()


def test_owned_lock_backs_a_condition_and_tracks_ownership():
    lock = OwnedLock()
    assert not lock.held_by_current_thread()
    with lock:
        assert lock.held_by_current_thread()
        assert lock._is_owned()
    assert not lock.held_by_current_thread()
    condition = threading.Condition(lock)
    with condition:
        condition.notify_all()  # requires _is_owned() to say True
