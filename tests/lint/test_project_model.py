"""Pass 1 of the analyzer: module names, import edges, call resolution.

These pin the model-construction behaviors the cross-file rules lean
on: submodule retargeting (so re-exporting packages are not cyclic by
construction), the TYPE_CHECKING and function-scope exclusions, and
attribute-type inference deep enough to resolve ``self.store.put``.
"""

from lint_helpers import module_from_source
from repro.lint.project import build_project_model, module_name_for


def _model(*pairs):
    return build_project_model(
        [module_from_source(source, relpath) for relpath, source in pairs]
    )


def test_module_names_strip_src_suffixes_and_package_inits():
    assert module_name_for("repro/serve/server.py") == "repro.serve.server"
    assert module_name_for("repro/serve/__init__.py") == "repro.serve"
    assert module_name_for("repro/netutil.py") == "repro.netutil"


def test_from_package_import_retargets_to_the_submodule():
    # ``from a import b`` depends on the submodule ``a.b``, not on the
    # package __init__ that happens to expose it.
    model = _model(
        ("src/a/__init__.py", ""),
        ("src/a/b.py", "X = 1\n"),
        ("src/c.py", "from a import b\n"),
    )
    assert model.import_graph()["c"] == {"a.b"}


def test_from_module_import_symbol_lands_on_the_defining_module():
    model = _model(
        ("src/a/__init__.py", ""),
        ("src/a/b.py", "X = 1\n"),
        ("src/c.py", "from a.b import X\n"),
    )
    assert model.import_graph()["c"] == {"a.b"}
    assert model.modules["c"].name_table["X"] == "a.b.X"


def test_type_checking_imports_are_not_runtime_edges():
    model = _model(
        ("src/a/__init__.py", ""),
        ("src/a/b.py", "X = 1\n"),
        ("src/c.py",
         "from typing import TYPE_CHECKING\n"
         "if TYPE_CHECKING:\n"
         "    from a import b\n"),
    )
    assert model.import_graph()["c"] == set()
    # The edge itself is kept (name resolution still wants it), only
    # demoted from the runtime graph.
    assert any(
        edge.imported == "a.b" and not edge.top_level
        for edge in model.modules["c"].imports
    )


def test_function_scoped_imports_are_not_runtime_edges():
    model = _model(
        ("src/a/__init__.py", ""),
        ("src/a/b.py", "X = 1\n"),
        ("src/c.py",
         "def late():\n"
         "    from a import b\n"
         "    return b\n"),
    )
    assert model.import_graph()["c"] == set()


def test_self_import_never_becomes_a_graph_edge():
    model = _model(("src/a/__init__.py", ""), ("src/a/b.py", "import a.b\n"))
    assert model.import_graph()["a.b"] == set()


def test_resolution_follows_inferred_attribute_types():
    model = _model(
        ("src/pkg/__init__.py", ""),
        ("src/pkg/store.py",
         "class Store:\n"
         "    def put(self, key):\n"
         "        return key\n"),
        ("src/pkg/service.py",
         "import threading\n"
         "from pkg.store import Store\n"
         "class Service:\n"
         "    def __init__(self, store: Store):\n"
         "        self._lock = threading.Lock()\n"
         "        self.store = store\n"
         "    def handle(self, key):\n"
         "        return self.store.put(key)\n"),
    )
    service = model.modules["pkg.service"]
    handle = service.functions["Service.handle"]
    target = model.resolve_function(handle, "self.store.put")
    assert target is not None
    assert (target.module, target.qualname) == ("pkg.store", "Store.put")
    # Resolution is an under-approximation: unknowns stay None.
    assert model.resolve_function(handle, "self.mystery.put") is None
    # The lock inventory feeds RPR012's with-statement detection.
    assert service.classes["Service"].lock_attrs == {"_lock"}


def test_nested_and_async_defs_are_indexed_with_qualnames():
    model = _model(
        ("src/m.py",
         "async def outer():\n"
         "    def inner():\n"
         "        return 1\n"
         "    return inner\n"),
    )
    functions = model.modules["m"].functions
    assert functions["outer"].is_async
    assert not functions["outer.inner"].is_async
    assert functions["outer.inner"].class_name is None
