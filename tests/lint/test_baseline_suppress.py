"""Baseline matching and inline suppressions: the two escape hatches."""

import json

import pytest

from repro.lint.baseline import TODO_REASON, Baseline, BaselineEntry
from repro.lint.findings import Finding, Severity
from repro.lint.suppress import Suppressions


def _finding(line=10, rule="RPR001", path="src/repro/sim/engine.py",
             message="a violation"):
    return Finding(
        path=path, line=line, rule=rule, message=message,
        severity=Severity.ERROR,
    )


# -- baseline ----------------------------------------------------------------

def test_split_partitions_new_grandfathered_and_stale():
    baseline = Baseline(entries=[
        BaselineEntry(rule="RPR001", path="src/repro/sim/engine.py",
                      message="a violation", reason="known"),
        BaselineEntry(rule="RPR006", path="src/repro/sweep/engine.py",
                      message="long gone", reason="paid down"),
    ])
    grandfatherable = _finding()
    fresh = _finding(message="a brand-new violation")
    new, grandfathered, stale = baseline.split([grandfatherable, fresh])
    assert new == [fresh]
    assert grandfathered == [grandfatherable]
    assert [entry.message for entry in stale] == ["long gone"]


def test_matching_ignores_line_numbers():
    # Edits above a grandfathered site shift its line; the fingerprint
    # (rule, path, message) must keep matching regardless.
    baseline = Baseline(entries=[
        BaselineEntry(rule="RPR001", path="src/repro/sim/engine.py",
                      message="a violation"),
    ])
    new, grandfathered, _ = baseline.split([_finding(line=999)])
    assert new == [] and len(grandfathered) == 1


def test_one_entry_absorbs_every_same_message_site():
    baseline = Baseline(entries=[
        BaselineEntry(rule="RPR001", path="src/repro/sim/engine.py",
                      message="a violation"),
    ])
    new, grandfathered, stale = baseline.split(
        [_finding(line=10), _finding(line=20)]
    )
    assert new == [] and len(grandfathered) == 2 and stale == []


def test_load_missing_file_is_empty(tmp_path):
    assert Baseline.load(tmp_path / "absent.json").entries == []


def test_load_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError, match="unsupported baseline version"):
        Baseline.load(path)


def test_write_load_round_trip_preserves_reasons(tmp_path):
    original = Baseline(entries=[
        BaselineEntry(rule="RPR006", path="b.py", message="m2", reason="why"),
        BaselineEntry(rule="RPR001", path="a.py", message="m1", reason="because"),
    ])
    path = original.write(tmp_path / "baseline.json")
    reloaded = Baseline.load(path)
    # written sorted by (path, rule, message) for stable diffs
    assert [entry.path for entry in reloaded.entries] == ["a.py", "b.py"]
    assert {entry.reason for entry in reloaded.entries} == {"because", "why"}


def test_from_findings_keeps_prior_reasons_and_deduplicates():
    previous = Baseline(entries=[
        BaselineEntry(rule="RPR001", path="src/repro/sim/engine.py",
                      message="a violation", reason="reviewed 2026-08"),
    ])
    rebuilt = Baseline.from_findings(
        [_finding(line=10), _finding(line=20),
         _finding(message="unreviewed")],
        previous,
    )
    assert len(rebuilt.entries) == 2  # same-fingerprint sites collapse
    by_message = {entry.message: entry.reason for entry in rebuilt.entries}
    assert by_message["a violation"] == "reviewed 2026-08"
    assert by_message["unreviewed"] == TODO_REASON


# -- inline suppressions -----------------------------------------------------

def test_line_suppression_silences_only_its_line_and_rules():
    suppressions = Suppressions.parse(
        "x = 1\n"
        "y = wall_clock()  # repro-lint: disable=RPR001,RPR006\n"
        "z = wall_clock()\n"
    )
    assert suppressions.is_suppressed("RPR001", 2)
    assert suppressions.is_suppressed("RPR006", 2)
    assert not suppressions.is_suppressed("RPR002", 2)
    assert not suppressions.is_suppressed("RPR001", 3)


def test_file_suppression_honoured_only_near_the_top():
    head = "# repro-lint: disable-file=RPR008\n" + "x = 1\n" * 20
    suppressions = Suppressions.parse(head)
    assert suppressions.is_suppressed("RPR008", 15)
    late = "x = 1\n" * 20 + "# repro-lint: disable-file=RPR008\n"
    assert not Suppressions.parse(late).is_suppressed("RPR008", 15)


def test_disable_all_silences_every_rule():
    suppressions = Suppressions.parse(
        "y = wall_clock()  # repro-lint: disable=all\n"
    )
    assert suppressions.is_suppressed("RPR001", 1)
    assert suppressions.is_suppressed("RPR008", 1)
