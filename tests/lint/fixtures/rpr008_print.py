"""RPR008 golden fixture: no ambient-stdout ``print()`` in library code.

Never imported — linted as if it lived under ``src/repro/analysis/``
(not a print-allowed module).  Tag semantics as in rpr001_determinism.
"""

import sys


def narrates_to_ambient_stdout(result):
    print("total:", result)  # expect: print() without an explicit file=


def injected_stream_is_fine(result, out):
    print("total:", result, file=out)


def stderr_is_fine_too(result):
    print("total:", result, file=sys.stderr)
