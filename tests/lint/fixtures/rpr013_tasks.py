"""RPR013 fixture: dropped coroutines and fire-and-forget tasks.

Linted as if it lived in ``repro/serve``; the same source under
``repro/analysis`` is out of scope and must produce nothing.
"""

import asyncio


async def work():
    return 1


async def broken(loop):
    work()  # expect: coroutine work() is neither awaited nor bound
    loop.create_task(work())  # expect: fire-and-forget task in broken
    await work()  # good: awaited
    handle = loop.create_task(work())  # good: the handle is bound
    return await handle


def sync_scheduler():
    # A sync function gets no exemption: the bare call still builds a
    # coroutine object that nothing will ever run.
    work()  # expect: coroutine work() is neither awaited nor bound
    pending = work()  # good: bound for a later gather
    return pending


async def gathered():
    return await asyncio.gather(work(), work())  # good: consumed by gather
