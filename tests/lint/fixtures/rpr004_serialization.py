"""RPR004 golden fixture: ``to_dict``/``from_dict`` symmetry.

Never imported — parsed and linted by tests/lint/test_rules.py.  Tag
semantics as in rpr001_determinism.
"""


class WriteOnly:  # expect: defines to_dict but no from_dict
    def to_dict(self):
        return {"value": self.value}


class DropsKey:
    def to_dict(self):
        return {"value": self.value, "extra": self.extra}

    @classmethod
    def from_dict(cls, data):  # expect: never references to_dict key 'extra'
        instance = cls()
        instance.value = data["value"]
        return instance


class Symmetric:
    def to_dict(self):
        return {"value": self.value}

    @classmethod
    def from_dict(cls, data):
        instance = cls()
        instance.value = data["value"]
        return instance


class GenericInverse:
    def to_dict(self):
        return {"value": self.value, "extra": self.extra}

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


class DelegatingInverse:
    def to_dict(self):
        return {"value": self.value, "extra": self.extra}

    @classmethod
    def from_dict(cls, data):
        return _shared_loader(cls, data)


def _shared_loader(cls, data):
    return cls(**data)
