"""RPR003 golden fixture: a stale and a contradictory inventory entry.

Against rpr003_config_clean.py this inventory must yield two findings:
``retired_field`` is not a config field (stale entry), and
``num_disks`` appears in both tuples (contradictory decision).
"""

KNOWN_CONFIG_FIELDS = ("num_runs", "num_disks", "retired_field")
KEY_EXCLUDED_FIELDS = ("trials", "num_disks")
