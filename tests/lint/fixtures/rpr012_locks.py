"""RPR012 fixture: shared-state mutations with and without the lock.

Linted as if it lived in ``repro/realio``; the same source under
``repro/sim`` is out of scope and must produce nothing.
"""

import threading


class Collector:
    def __init__(self, limit: int):
        self._lock = threading.Lock()
        self.samples = []
        self.errors = 0
        self.blocks_read = 0  # repro-lint: shared-state=monotonic stat; torn reads tolerated
        self.tag = "idle"
        self.limit = limit

    def start(self):
        worker = threading.Thread(target=self._reader_loop, name="reader")
        worker.start()
        return worker

    def _reader_loop(self):
        with self._lock:
            self.samples.append(1)  # good: held under the owning lock
        self.errors += 1  # expect: unlocked write to shared attribute self.errors
        self.errors += 1  # repro-lint: shared-state=best-effort tally, races tolerated
        self.blocks_read += 1  # good: annotated at its __init__ assignment
        self._finish()

    def _finish(self):
        self.samples.append(2)  # expect: unlocked write to shared attribute self.samples

    def ingest(self, value):
        # Shared state is shared from every thread: the main thread gets
        # no exemption once a reader thread also mutates the attribute.
        self.samples.append(value)  # expect: unlocked write to shared attribute self.samples

    def rename(self, tag):
        self.tag = tag  # good: never touched by thread-reachable code
