"""RPR007 golden fixture: mutable default arguments.

Never imported — parsed and linted by tests/lint/test_rules.py.  Tag
semantics as in rpr001_determinism.
"""


def appends_to_shared_list(value, bucket=[]):  # expect: mutable default [] for argument 'bucket'
    bucket.append(value)
    return bucket


def shares_a_dict(value, *, registry={}):  # expect: mutable default {} for argument 'registry'
    registry[value] = True
    return registry


def builds_a_set(seen=set()):  # expect: mutable default set() for argument 'seen'
    return seen


def none_default_is_fine(bucket=None):
    if bucket is None:
        bucket = []
    return bucket


def immutable_defaults_are_fine(count=0, label="", pair=(1, 2)):
    return count, label, pair
