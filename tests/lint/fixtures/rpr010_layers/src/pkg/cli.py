"""Top layer: the only module allowed to see everything below."""

from pkg.svc.server import serve


def main() -> int:
    return serve(3)
