"""A leaf service module: the upward-injection test's target."""

READY = "ready"
