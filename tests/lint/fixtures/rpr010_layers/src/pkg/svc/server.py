"""Middle layer: serves the core computation downward only."""

from pkg.core import engine


def serve(k: int) -> int:
    return engine.simulate(k)
