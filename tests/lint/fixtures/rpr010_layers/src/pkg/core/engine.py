"""Lowest layer: pure computation, no upward dependencies."""


def simulate(k: int) -> int:
    return 2 * k
