"""Second core module: same-layer imports are legal, cycles are not."""

from pkg.core import engine


def double_simulate(k: int) -> int:
    return engine.simulate(engine.simulate(k))
