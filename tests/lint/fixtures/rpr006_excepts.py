"""RPR006 golden fixture: exception discipline in worker/retry code.

Never imported — linted as if it lived under ``src/repro/sweep/`` (a
configured broad-except module).  Tag semantics as in
rpr001_determinism.
"""


def bare_handler(job):
    try:
        return job()
    except:  # expect: bare except:
        return None


def swallows_failure(job):
    try:
        return job()
    except ValueError:  # expect: except ValueError: with a pass-only body
        pass


def over_catches(job):
    try:
        return job()
    except Exception:  # expect: broad except Exception in worker/retry code
        return None


def narrow_handling_is_fine(job):
    try:
        return job()
    except ValueError as exc:
        return str(exc)


def cleanup_and_reraise_is_fine(job, scratch):
    try:
        return job()
    except BaseException:
        scratch.clear()
        raise
