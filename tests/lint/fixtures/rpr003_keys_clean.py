"""RPR003 golden fixture: the inventory matching rpr003_config_clean.py."""

KNOWN_CONFIG_FIELDS = ("num_runs", "num_disks")
KEY_EXCLUDED_FIELDS = ("trials",)
