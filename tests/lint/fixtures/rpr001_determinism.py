"""RPR001 golden fixture: determinism violations plus allowed idioms.

Never imported — tests/lint/test_rules.py parses this file and lints it
as if it lived at ``src/repro/sim/lint_fixture.py``.  Each line carrying
an expect tag must yield exactly one RPR001 finding whose message
contains the tag text; every untagged line must yield none.
"""

import datetime
import os
import random
import time

from random import choice  # expect: from random import choice

import numpy.random  # expect: import of numpy.random


def draws_from_global_rng():
    return random.random()  # expect: module-level random.random()


def builds_unseeded_stream():
    return random.Random()  # expect: unseeded random.Random()


def reads_wall_clock():
    return time.perf_counter()  # expect: wall-clock time.perf_counter()


def reads_os_entropy():
    return os.urandom(8)  # expect: OS entropy os.urandom()


def stamps_wall_clock():
    return datetime.datetime.now()  # expect: wall-clock datetime.datetime.now()


def seeded_stream_is_fine(seed):
    stream = random.Random(seed)
    return stream.random()


def virtual_time_is_fine(now_ms, service_ms):
    return now_ms + service_ms
