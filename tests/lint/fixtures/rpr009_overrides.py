"""RPR009 golden fixture: deprecated override shims vs RunContext."""

from repro.api import RunContext, configure
from repro.core import simulator
from repro.core.simulator import MergeSimulation
from repro.core.simulator import kernel_override  # expect: kernel_override
from repro.core.simulator import set_fault_plan_override as set_plan  # expect: set_fault_plan_override


def good_run_context(config):
    with configure(kernel="fast"):
        return MergeSimulation(config).run()


def good_explicit_context(config, plan):
    with RunContext(fault_plan=plan):
        return MergeSimulation(config).run()


def bad_context_manager(config):
    with kernel_override("fast"):  # attribute-free call: import flagged above
        return MergeSimulation(config).run()


def bad_attribute_call(config):
    with simulator.fault_plan_override(None):  # expect: fault_plan_override
        return MergeSimulation(config).run()


def bad_attribute_setter():
    set_plan(None)
    simulator.set_simulation_backend(None)  # expect: set_simulation_backend
