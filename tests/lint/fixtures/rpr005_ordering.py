"""RPR005 golden fixture: no set iteration in event-ordering code.

Never imported — linted as if it lived under ``src/repro/disks/``.
Tag semantics as in rpr001_determinism.
"""


def drains_in_set_order(pending):
    for request in {3, 1, 2}:  # expect: iteration over a set
        pending.append(request)


def comprehension_over_set(block_ids):
    return [block_id * 2 for block_id in set(block_ids)]  # expect: iteration over a set


def generator_over_frozenset(block_ids):
    return sum(block_id for block_id in frozenset(block_ids))  # expect: iteration over a set


def sorted_set_is_fine(block_ids):
    return [block_id for block_id in sorted(set(block_ids))]


def list_iteration_is_fine(queue):
    for request in queue:
        yield request
