"""RPR011 fixture: blocking calls on the event loop, direct and transitive.

Linted as if it lived in ``repro/serve``; the same source under
``repro/sim`` must produce nothing (the rule is scoped to the async
service packages).
"""

import asyncio
import subprocess
import time
from pathlib import Path


async def handler():
    time.sleep(0.1)  # expect: blocking call time.sleep()
    payload = open("payload.json").read()  # expect: blocking call open()
    subprocess.run(["true"])  # expect: blocking call subprocess.run()
    out = Path("out.json")
    out.write_text(payload)  # expect: blocking call .write_text()
    await asyncio.sleep(0)  # good: the async sleep never blocks the loop


async def joins_executor(pool):
    return pool.submit(work).result()  # expect: .submit(...).result()


async def transitive():
    return _store()  # expect: reaches blocking open() via transitive -> _store -> _flush


def _store():
    return _flush()


def _flush():
    # good: a sync helper may block — the offence is reaching it from a
    # coroutine, reported at the call site inside ``transitive``.
    with open("state.json", "w") as handle:
        handle.write("{}")


def work():
    time.sleep(1.0)  # good: runs on an executor thread, not the loop


async def clean(loop):
    return await loop.run_in_executor(None, work)  # good: the fix pattern
