"""RPR003 golden fixture: a config field nobody inventoried.

Identical to rpr003_config_clean.py except for ``write_caching``, which
appears in neither KNOWN_CONFIG_FIELDS nor KEY_EXCLUDED_FIELDS of
rpr003_keys_clean.py — the rule must flag exactly that field.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SimulationConfig:
    num_runs: int
    num_disks: int = 2
    trials: int = 5
    write_caching: bool = False
