"""RPR002 golden fixture: hot-path classes must declare ``__slots__``.

Never imported — linted as if it were ``src/repro/sim/fast.py`` (the
configured hot-path module).  Tag semantics as in rpr001_determinism.
"""

import enum
from dataclasses import dataclass


class UnslottedEvent:  # expect: class UnslottedEvent in a hot-path module
    def __init__(self, when):
        self.when = when


class AlsoUnslotted(UnslottedEvent):  # expect: class AlsoUnslotted in a hot-path module
    pass


class SlottedEvent:
    __slots__ = ("when",)

    def __init__(self, when):
        self.when = when


class EmptySlotsSubclass(SlottedEvent):
    __slots__ = ()


class Phase(enum.Enum):
    READ = 1
    WRITE = 2


@dataclass
class Snapshot:
    when: int
