"""RPR003 golden fixture: a config dataclass in sync with the inventory.

Never imported — tests/lint/test_schema_rule.py points the cache-key
schema rule's ``config-module`` at this file and its ``keys-module`` at
rpr003_keys_clean.py; together they must produce zero findings.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class SimulationConfig:
    num_runs: int
    num_disks: int = 2
    trials: int = 5
