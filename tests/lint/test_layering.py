"""RPR010 against the miniature layered project in ``rpr010_layers/``.

The fixture package declares ``core < svc < cli`` and ships clean; each
test copies it into a tmp dir and injects one illegal import, asserting
the finding names the full chain — both endpoints, both layers, and the
declared order — so the report is actionable without opening the graph.
"""

import shutil

from lint_helpers import FIXTURES
from repro.lint.config import load_config
from repro.lint.engine import LintEngine

ENGINE_PY = "src/pkg/core/engine.py"


def _project(tmp_path):
    root = tmp_path / "layers"
    shutil.copytree(FIXTURES / "rpr010_layers", root)
    return root


def _run(root):
    return LintEngine(load_config(root), root).run()


def _inject(root, relpath, line):
    path = root / relpath
    path.write_text(
        line + "\n" + path.read_text(encoding="utf-8"), encoding="utf-8"
    )


def test_the_clean_fixture_package_lints_clean(tmp_path):
    report = _run(_project(tmp_path))
    assert report.findings == []
    assert report.files_scanned == 8


def test_upward_import_reports_the_full_chain(tmp_path):
    root = _project(tmp_path)
    _inject(root, ENGINE_PY, "from pkg.svc import status")
    findings = _run(root).findings
    assert [f.rule for f in findings] == ["RPR010"]
    finding = findings[0]
    assert finding.path == ENGINE_PY
    assert finding.line == 1
    assert (
        "upward import: pkg.core.engine (layer 'core') imports "
        "pkg.svc.status (layer 'svc')" in finding.message
    )
    assert (
        "chain: pkg.core.engine [core] -> pkg.svc.status [svc], "
        "against layer order core < svc < cli" in finding.message
    )


def test_import_cycle_reports_the_concrete_cycle_path(tmp_path):
    # engine -> other closes the loop with the fixture's other -> engine;
    # both sit in the same layer, so the only finding is the cycle.
    root = _project(tmp_path)
    _inject(root, ENGINE_PY, "from pkg.core import other")
    findings = _run(root).findings
    assert [f.rule for f in findings] == ["RPR010"]
    assert (
        "import cycle: pkg.core.engine -> pkg.core.other -> pkg.core.engine"
        in findings[0].message
    )
    assert findings[0].path == ENGINE_PY


def test_function_scoped_upward_import_is_the_sanctioned_escape(tmp_path):
    root = _project(tmp_path)
    path = root / ENGINE_PY
    path.write_text(
        path.read_text(encoding="utf-8")
        + "\n\ndef late(k):\n"
        "    from pkg.svc.server import serve\n"
        "    return serve(k)\n",
        encoding="utf-8",
    )
    assert _run(root).findings == []


def test_inline_disable_suppresses_the_upward_import(tmp_path):
    root = _project(tmp_path)
    _inject(
        root, ENGINE_PY,
        "from pkg.svc import status  # repro-lint: disable=RPR010",
    )
    report = _run(root)
    assert report.findings == []
    assert report.suppressed == 1


def test_layer_declaration_mismatch_is_one_clear_finding(tmp_path):
    root = _project(tmp_path)
    pyproject = root / "pyproject.toml"
    pyproject.write_text(
        pyproject.read_text(encoding="utf-8").replace(
            'layer-order = ["core", "svc", "cli"]',
            'layer-order = ["core", "svc"]',
        ),
        encoding="utf-8",
    )
    findings = _run(root).findings
    assert [f.rule for f in findings] == ["RPR010"]
    assert findings[0].path == "pyproject.toml"
    assert "layer declaration mismatch" in findings[0].message
    assert "differ on: cli" in findings[0].message
