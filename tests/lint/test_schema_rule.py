"""RPR003: the cache-key schema cross-check, on fixtures and the real tree.

The acceptance-critical case is ``test_new_field_on_the_real_config``:
it copies the *actual* ``core/parameters.py``, adds one field the way a
future contributor would, and proves the rule fails until the field is
inventoried in ``sweep/keys.py``.
"""

import pytest

from lint_helpers import FIXTURES, REPO_ROOT
from repro.lint.config import LintConfig
from repro.lint.registry import get_rule

RULE_ID = "RPR003"


def _fixture_config(config_fixture, keys_fixture):
    return LintConfig(
        config_module=f"tests/lint/fixtures/{config_fixture}",
        keys_module=f"tests/lint/fixtures/{keys_fixture}",
    )


def _run(config, root=REPO_ROOT):
    rule = get_rule(RULE_ID)
    return sorted(rule.check([], config, root))


def _line_of(fixture, needle):
    for number, line in enumerate(
        (FIXTURES / fixture).read_text(encoding="utf-8").splitlines(), start=1
    ):
        if needle in line:
            return number
    raise AssertionError(f"{needle!r} not found in {fixture}")


def test_synchronised_fixture_pair_is_clean():
    assert _run(
        _fixture_config("rpr003_config_clean.py", "rpr003_keys_clean.py")
    ) == []


def test_uninventoried_config_field_fires():
    findings = _run(
        _fixture_config("rpr003_config_drift.py", "rpr003_keys_clean.py")
    )
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == RULE_ID
    assert finding.path == "tests/lint/fixtures/rpr003_config_drift.py"
    assert finding.line == _line_of(
        "rpr003_config_drift.py", "write_caching: bool"
    )
    assert "field 'write_caching' is not accounted for" in finding.message
    assert "KNOWN_CONFIG_FIELDS" in finding.message
    assert "KEY_EXCLUDED_FIELDS" in finding.message


def test_stale_and_contradictory_inventory_entries_fire():
    findings = _run(
        _fixture_config("rpr003_config_clean.py", "rpr003_keys_drift.py")
    )
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert all(f.path == "tests/lint/fixtures/rpr003_keys_drift.py"
               for f in findings)
    assert any(
        "lists 'retired_field', which is not a SimulationConfig field"
        in message for message in messages
    )
    assert any(
        "'num_disks' appears in both" in message for message in messages
    )


def test_missing_inventory_declaration_fires():
    # Pointing keys-module at a file with no tuples: the invariant is
    # unenforceable and the rule must say so rather than pass silently.
    findings = _run(
        _fixture_config("rpr003_config_clean.py", "rpr003_config_clean.py")
    )
    assert len(findings) == 1
    assert "does not declare KNOWN_CONFIG_FIELDS" in findings[0].message


def test_unparsable_config_module_fires():
    config = LintConfig(config_module="tests/lint/no_such_module.py")
    findings = _run(config)
    assert len(findings) == 1
    assert "cannot parse config module" in findings[0].message


def test_real_tree_is_in_sync():
    # Default config against the actual repo: parameters.py and keys.py
    # must agree (this is what `repro lint` enforces on every run).
    assert _run(LintConfig()) == []


def test_new_field_on_the_real_config(tmp_path):
    # The acceptance scenario: add a field to the real SimulationConfig
    # without touching keys.py and the rule must fail the lint.
    params_source = (
        REPO_ROOT / "src/repro/core/parameters.py"
    ).read_text(encoding="utf-8")
    anchor = 'kernel: str = "reference"'
    assert anchor in params_source
    (tmp_path / "parameters.py").write_text(
        params_source.replace(
            anchor, anchor + "\n    added_by_test: bool = False"
        ),
        encoding="utf-8",
    )
    (tmp_path / "keys.py").write_text(
        (REPO_ROOT / "src/repro/sweep/keys.py").read_text(encoding="utf-8"),
        encoding="utf-8",
    )
    config = LintConfig(config_module="parameters.py", keys_module="keys.py")
    findings = _run(config, root=tmp_path)
    assert [f.rule for f in findings] == [RULE_ID]
    assert "field 'added_by_test' is not accounted for" in findings[0].message
