"""The determinism invariant at runtime, not just statically (RPR001).

RPR001 proves simulation modules never *mention* wall clocks or ambient
entropy; this test proves they never *reach* them, by poisoning the
process-level sources and running the full merge-d5 bench scenario
(k=10 runs on D=5 disks, inter-run prefetch, N=10, 400 blocks/run,
2 trials, seed 1992) on both kernels.  Any call to a poisoned function
anywhere in the simulation fails the trial immediately.
"""

import os
import random
import time

import pytest

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation

#: (module, attribute) pairs a deterministic simulation must never call.
_POISONED = [
    (time, "time"),
    (time, "time_ns"),
    (time, "perf_counter"),
    (time, "monotonic"),
    (random, "random"),
    (random, "seed"),
    (os, "urandom"),
]


def _poison(monkeypatch):
    for owner, name in _POISONED:
        def boom(*args, _label=f"{owner.__name__}.{name}", **kwargs):
            raise AssertionError(
                f"{_label}() called during a simulation; all randomness "
                "must come from seeded random_streams and time must be "
                "virtual"
            )
        monkeypatch.setattr(owner, name, boom)


def _merge_d5(kernel):
    return SimulationConfig(
        num_runs=10,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        blocks_per_run=400,
        trials=2,
        base_seed=1992,
        kernel=kernel,
    )


@pytest.mark.parametrize("kernel", ["reference", "fast"])
def test_merge_d5_completes_with_poisoned_clocks_and_entropy(
    monkeypatch, kernel
):
    _poison(monkeypatch)
    result = MergeSimulation(_merge_d5(kernel)).run()
    assert len(result.trials) == 2
    assert result.total_time_s.mean > 0


def test_kernels_agree_bit_for_bit_even_while_poisoned(monkeypatch):
    _poison(monkeypatch)
    reference = MergeSimulation(_merge_d5("reference")).run()
    fast = MergeSimulation(_merge_d5("fast")).run()
    assert [trial.to_dict() for trial in reference.trials] == [
        trial.to_dict() for trial in fast.trials
    ]
