"""The ``repro lint`` CLI: exit codes, formats, baseline workflow.

The first test is the acceptance gate for the whole subsystem: linting
``src`` with the *committed* baseline must exit 0 on the current tree.
"""

import argparse
import json
import os
import subprocess
import sys

from lint_helpers import REPO_ROOT
from repro.lint.baseline import TODO_REASON, Baseline
from repro.lint.cli import add_lint_arguments, run_lint

_CLEAN = "VALUE = 1\n"
_VIOLATION = (
    "import time\n"
    "\n"
    "def poll():\n"
    "    return time.time()\n"
)


def _args(argv):
    parser = argparse.ArgumentParser()
    add_lint_arguments(parser)
    return parser.parse_args(argv)


def _lint(argv):
    return run_lint(_args(argv))


def _tmp_project(tmp_path, source=_VIOLATION):
    # RPR003's two cross-checked modules do not exist in a synthetic
    # tree, so the fixture project disables that rule.
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\ndisable = ["RPR003"]\n', encoding="utf-8"
    )
    module = tmp_path / "src" / "repro" / "sim" / "clock.py"
    module.parent.mkdir(parents=True)
    module.write_text(source, encoding="utf-8")
    return tmp_path


# -- the real tree -----------------------------------------------------------

def test_src_with_committed_baseline_exits_zero(capsys):
    code = _lint(["src", "--root", str(REPO_ROOT)])
    out = capsys.readouterr().out
    assert code == 0, f"lint over src must be clean, got:\n{out}"
    assert out.strip().endswith("lint: ok")


def test_json_format_is_the_machine_readable_contract(capsys):
    code = _lint(["src", "--root", str(REPO_ROOT), "--format", "json",
                  "--stats"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["version"] == 1
    assert payload["exit_code"] == 0
    assert payload["new_findings"] == []
    assert payload["stale_baseline_entries"] == []
    assert payload["baseline"] == "lint-baseline.json"
    assert payload["stats"]["files_scanned"] > 20
    assert payload["stats"]["rules_run"] == 13


def test_no_baseline_exposes_exactly_the_grandfathered_findings(capsys):
    _lint(["src", "--root", str(REPO_ROOT), "--format", "json"])
    with_baseline = json.loads(capsys.readouterr().out)
    code = _lint(["src", "--root", str(REPO_ROOT), "--format", "json",
                  "--no-baseline"])
    without = json.loads(capsys.readouterr().out)
    grandfathered = with_baseline["grandfathered"]
    assert without["new_findings"] == grandfathered
    assert code == (1 if grandfathered else 0)


def test_stats_flag_appends_the_summary(capsys):
    _lint(["src", "--root", str(REPO_ROOT), "--stats"])
    out = capsys.readouterr().out
    assert "lint stats:" in out
    assert "file(s) scanned" in out


def test_module_entrypoint_matches_make_lint():
    # `make lint` runs exactly this; one subprocess proves the argparse
    # wiring end to end.
    env = dict(os.environ, PYTHONPATH="src")
    result = subprocess.run(
        [sys.executable, "-m", "repro", "lint", "src", "--stats"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "lint: ok" in result.stdout


# -- the baseline workflow on a synthetic project ----------------------------

def test_new_finding_exits_one_then_write_baseline_grandfathers(
    tmp_path, capsys
):
    root = _tmp_project(tmp_path)
    assert _lint(["--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out and "new finding(s)" in out

    assert _lint(["--root", str(root), "--write-baseline"]) == 0
    capsys.readouterr()
    baseline = Baseline.load(root / "lint-baseline.json")
    assert [entry.rule for entry in baseline.entries] == ["RPR001"]
    assert baseline.entries[0].reason == TODO_REASON

    assert _lint(["--root", str(root)]) == 0
    assert "grandfathered" in capsys.readouterr().out


def test_fixing_the_finding_reports_the_stale_entry(tmp_path, capsys):
    root = _tmp_project(tmp_path)
    _lint(["--root", str(root), "--write-baseline"])
    capsys.readouterr()
    (root / "src" / "repro" / "sim" / "clock.py").write_text(
        _CLEAN, encoding="utf-8"
    )
    assert _lint(["--root", str(root)]) == 0
    out = capsys.readouterr().out
    assert "stale baseline entry" in out and "remove it" in out


def test_write_baseline_preserves_existing_reasons(tmp_path, capsys):
    root = _tmp_project(tmp_path)
    _lint(["--root", str(root), "--write-baseline"])
    capsys.readouterr()
    path = root / "lint-baseline.json"
    reviewed = json.loads(path.read_text(encoding="utf-8"))
    reviewed["entries"][0]["reason"] = "deliberate: legacy clock shim"
    path.write_text(json.dumps(reviewed), encoding="utf-8")
    _lint(["--root", str(root), "--write-baseline"])
    capsys.readouterr()
    rebuilt = Baseline.load(path)
    assert rebuilt.entries[0].reason == "deliberate: legacy clock shim"


def test_prune_baseline_removes_stale_entries_and_is_idempotent(
    tmp_path, capsys
):
    root = _tmp_project(tmp_path)
    _lint(["--root", str(root), "--write-baseline"])
    capsys.readouterr()
    # Fixing the violation strands its baseline entry.
    (root / "src" / "repro" / "sim" / "clock.py").write_text(
        _CLEAN, encoding="utf-8"
    )
    assert _lint(["--root", str(root), "--prune-baseline"]) == 0
    out = capsys.readouterr().out
    assert "baseline pruned: 1 stale entr(y/ies) removed, 0 kept" in out
    assert Baseline.load(root / "lint-baseline.json").entries == []
    # Pruning the already-clean baseline is a no-op.
    assert _lint(["--root", str(root), "--prune-baseline"]) == 0
    assert "0 stale entr(y/ies) removed, 0 kept" in capsys.readouterr().out
    # And the ordinary run stops nagging about staleness.
    assert _lint(["--root", str(root)]) == 0
    assert "stale" not in capsys.readouterr().out


def test_prune_baseline_keeps_entries_that_still_fire(tmp_path, capsys):
    root = _tmp_project(tmp_path)
    _lint(["--root", str(root), "--write-baseline"])
    capsys.readouterr()
    assert _lint(["--root", str(root), "--prune-baseline"]) == 0
    assert "0 stale entr(y/ies) removed, 1 kept" in capsys.readouterr().out


def test_sarif_format_carries_rule_metadata_and_suppressions(capsys):
    code = _lint(["src", "--root", str(REPO_ROOT), "--format", "sarif"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [rule["id"] for rule in rules] == [
        f"RPR{index:03d}" for index in range(1, 14)
    ]
    assert all(rule["fullDescription"]["text"] for rule in rules)
    # The committed tree is clean, so every result is grandfathered and
    # must carry the SARIF suppression block naming the baseline.
    assert run["results"], "expected the baselined findings as results"
    for result in run["results"]:
        suppression = result["suppressions"][0]
        assert suppression["kind"] == "external"
        assert "lint-baseline.json" in suppression["justification"]


def test_graph_dot_renders_the_layered_import_graph(capsys):
    assert _lint(["src", "--root", str(REPO_ROOT), "--graph", "dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph repro_layers {")
    for layer in ("model", "engine", "services", "cli"):
        assert f'label="{layer}"' in out
    # A known downward edge: the serve layer reads the sweep cache.
    assert '"repro.serve" -> "repro.sweep"' in out


# -- error handling ----------------------------------------------------------

def test_unknown_config_key_exits_two(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\nbogus-key = 1\n", encoding="utf-8"
    )
    assert _lint(["--root", str(tmp_path)]) == 2
    assert "unknown [tool.repro-lint] key" in capsys.readouterr().err


def test_nonexistent_lint_path_exits_two(tmp_path, capsys):
    _tmp_project(tmp_path)
    assert _lint(["no/such/dir", "--root", str(tmp_path)]) == 2
    assert "does not exist" in capsys.readouterr().err
