"""Shared helpers for the lint test suite (not a test module).

The golden fixtures under ``fixtures/`` are never imported; they are
parsed as text and linted under a *fabricated* repo-relative path, so
one fixture file can stand in for ``src/repro/sim/...`` (in scope) or
``src/repro/analysis/...`` (out of scope) as each test requires.

Expected findings are driven by ``# expect: <text>`` markers inside the
fixtures: one marker per violating line, whose text must be a substring
of the finding's message.  Keeping the expectations next to the
violations means fixture edits cannot silently desynchronise the test.
"""

import ast
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.registry import ModuleInfo, get_rule

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = Path(__file__).parent / "fixtures"

_MARKER = "# expect:"


def module_from_source(source: str, relpath: str) -> ModuleInfo:
    """A ModuleInfo for inline source, linted under ``relpath``."""
    return ModuleInfo(
        path=REPO_ROOT / relpath,
        relpath=relpath,
        source=source,
        tree=ast.parse(source),
    )


def load_fixture(name: str, relpath: str) -> ModuleInfo:
    """Parse ``fixtures/<name>`` as if it lived at ``relpath``."""
    return module_from_source(
        (FIXTURES / name).read_text(encoding="utf-8"), relpath
    )


def expected_markers(module: ModuleInfo) -> list[tuple[int, str]]:
    """``(line, message_substring)`` pairs from ``# expect:`` markers."""
    markers = []
    for number, line in enumerate(module.source.splitlines(), start=1):
        if _MARKER in line:
            markers.append(
                (number, line.split(_MARKER, 1)[1].strip())
            )
    return markers


def run_rule(rule_id: str, module: ModuleInfo, config: LintConfig | None = None):
    """Sorted findings from one file-scope rule over one module."""
    rule = get_rule(rule_id)
    return sorted(rule.check(module, config or LintConfig()))


def run_model_rule(
    rule_id: str,
    modules: list[ModuleInfo],
    config: LintConfig | None = None,
):
    """Sorted findings from one model-scope rule over a module set."""
    from repro.lint.project import build_project_model

    rule = get_rule(rule_id)
    model = build_project_model(modules)
    return sorted(rule.check(model, config or LintConfig(), REPO_ROOT))
