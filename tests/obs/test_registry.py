"""MetricsRegistry: counters, gauges, histograms, and the trial snapshot."""

import pytest

from repro.core.parameters import SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.obs import MetricsRegistry
from repro.obs.registry import _instrument_key


def test_instrument_key_sorts_labels():
    assert _instrument_key("x", {}) == "x"
    assert (
        _instrument_key("x", {"b": 1, "a": "y"}) == "x{a=y,b=1}"
    )


def test_counter_get_or_create_and_inc():
    registry = MetricsRegistry()
    counter = registry.counter("fetches", disk=0)
    counter.inc()
    counter.inc(2)
    assert registry.counter("fetches", disk=0) is counter
    assert counter.value == 3
    # Different labels are a different instrument.
    assert registry.counter("fetches", disk=1).value == 0


def test_counter_rejects_negative_increment():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("x").inc(-1)


def test_gauge_set():
    registry = MetricsRegistry()
    registry.gauge("depth").set(7.5)
    assert registry.gauge("depth").value == 7.5


def test_histogram_buckets_and_overflow():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat", bounds=(1.0, 10.0))
    for value in (0.5, 0.7, 5.0, 99.0):
        histogram.observe(value)
    assert histogram.counts == [2, 1, 1]  # <=1, <=10, +inf
    assert histogram.count == 4
    assert histogram.mean == pytest.approx((0.5 + 0.7 + 5.0 + 99.0) / 4)


def test_histogram_empty_mean_is_zero():
    assert MetricsRegistry().histogram("lat").mean == 0.0


def test_round_trip_preserves_all_instruments():
    registry = MetricsRegistry()
    registry.counter("c", kind="demand").inc(4)
    registry.gauge("g").set(2.5)
    registry.histogram("h", bounds=(1.0,)).observe(3.0)
    restored = MetricsRegistry.from_dict(registry.to_dict())
    assert restored.to_dict() == registry.to_dict()


def test_to_dict_is_sorted_by_key():
    registry = MetricsRegistry()
    registry.counter("zeta").inc()
    registry.counter("alpha").inc()
    data = registry.to_dict()
    keys = list(data["counters"])
    assert keys == sorted(keys) and len(keys) == 2


def test_snapshot_mirrors_merge_metrics():
    config = SimulationConfig(
        num_runs=4, num_disks=2, blocks_per_run=20, trials=1
    )
    metrics = MergeSimulation(config).run_trial(trial=0)
    registry = MetricsRegistry()
    registry.snapshot_metrics(metrics)
    assert registry.counter("blocks_depleted").value == metrics.blocks_depleted
    assert registry.gauge("total_time_ms").value == metrics.total_time_ms
    for disk, stats in enumerate(metrics.drive_stats):
        assert (
            registry.counter("drive_busy_ms", disk=disk).value
            == stats.busy_ms
        )
        assert (
            registry.counter("drive_requests", disk=disk).value
            == stats.requests
        )
