"""TrialTrace / TraceSession collection semantics."""

import pytest

from repro.obs import EventKind, TraceSession


def _trial(session=None):
    session = session or TraceSession(name="test")
    return session.trial(seed=42, config_description="k=2 D=1")


def test_trial_indices_increment():
    session = TraceSession(name="s")
    first = session.trial(seed=1)
    second = session.trial(seed=2)
    assert (first.trial_index, second.trial_index) == (0, 1)
    assert session.trials == [first, second]


def test_span_and_instant_recorded_in_order():
    trial = _trial()
    trial.span(EventKind.SEEK, "disk-0", 0.0, 1.5)
    trial.instant(EventKind.FAULT, "disk-0", 2.0, args={"attempt": 1})
    kinds = [event.kind for event in trial.events]
    assert kinds == [EventKind.SEEK, EventKind.FAULT]
    assert trial.events[0].duration_ms == pytest.approx(1.5)
    assert trial.events[1].args == {"attempt": 1}


def test_span_duration_is_end_minus_start():
    trial = _trial()
    trial.span(EventKind.TRANSFER, "disk-0", 10.0, 12.5)
    assert trial.events[0].duration_ms == pytest.approx(2.5)


def test_service_busy_ms_sums_only_service_spans_on_that_disk():
    trial = _trial()
    trial.span(EventKind.DEMAND_FETCH, "disk-0", 0.0, 4.0)
    trial.span(EventKind.PREFETCH, "disk-0", 5.0, 7.0)
    trial.span(EventKind.SEEK, "disk-0", 0.0, 1.0)  # mechanics: excluded
    trial.span(EventKind.DEMAND_FETCH, "disk-1", 0.0, 9.0)  # other disk
    trial.span(EventKind.PREFETCH, "write-0", 0.0, 3.0)  # write track
    assert trial.service_busy_ms(0) == pytest.approx(6.0)
    assert trial.service_busy_ms(1) == pytest.approx(9.0)


def test_events_of_filters_by_kind():
    trial = _trial()
    trial.instant(EventKind.FAULT, "disk-0", 1.0)
    trial.span(EventKind.SEEK, "disk-0", 0.0, 1.0)
    trial.instant(EventKind.FAULT, "disk-1", 2.0)
    assert len(trial.events_of(EventKind.FAULT)) == 2


def test_observations_feed_registry_histograms():
    trial = _trial()
    trial.observe_queue_depth("disk-0", 3)
    trial.observe_service("disk-0", "demand-fetch", 12.0, 1.5)
    trial.observe_stall(4.0)
    keys = {instrument.key for instrument in trial.registry.instruments()}
    assert "queue_depth{track=disk-0}" in keys
    assert "service_ms{kind=demand-fetch,track=disk-0}" in keys
    assert "queue_wait_ms{track=disk-0}" in keys
    assert "demand_stall_ms" in keys


def test_session_round_trip():
    session = TraceSession(name="round")
    trial = session.trial(seed=7, config_description="cfg")
    trial.span(EventKind.DEMAND_FETCH, "disk-0", 0.0, 2.0, args={"run": 1})
    trial.instant(EventKind.DRIVE_DEGRADED, "disk-0", 3.0)
    trial.observe_queue_depth("disk-0", 1)
    restored = TraceSession.from_dict(session.to_dict())
    assert restored.name == "round"
    assert restored.to_dict() == session.to_dict()
    assert restored.trials[0].events == trial.events
    assert restored.total_events == session.total_events


def test_total_events_spans_trials():
    session = TraceSession(name="s")
    session.trial(seed=1).span(EventKind.SEEK, "disk-0", 0.0, 1.0)
    session.trial(seed=2).instant(EventKind.FAULT, "disk-0", 1.0)
    assert session.total_events == 2
