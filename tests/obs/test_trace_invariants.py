"""The contracts that make tracing trustworthy.

1. Tracing is an observer: enabling it leaves ``MergeMetrics`` output
   byte-for-byte identical.
2. Both kernels narrate the same story: identical configs and seeds
   produce identical event streams from ``reference`` and ``fast``.
3. Busy accounting closes: per-drive service spans sum to the drive's
   ``DriveStats.busy_ms`` within 1e-6 ms.
"""

import dataclasses

import pytest

from repro.api import configure
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.faults.plan import fail_slow_plan, transient_plan

MATRIX = [
    SimulationConfig(num_runs=6, num_disks=1, blocks_per_run=30),
    SimulationConfig(
        num_runs=8,
        num_disks=3,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=4,
        blocks_per_run=30,
        cpu_ms_per_block=0.5,
    ),
    SimulationConfig(
        num_runs=10,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        blocks_per_run=40,
    ),
    SimulationConfig(
        num_runs=8,
        num_disks=4,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=8,
        blocks_per_run=30,
        fault_plan=transient_plan(0.1),
    ),
    SimulationConfig(
        num_runs=6,
        num_disks=3,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=4,
        blocks_per_run=30,
        fault_plan=fail_slow_plan(1, 3.0),
    ),
]

IDS = [config.describe() for config in MATRIX]


def _traced_trial(config, kernel):
    config = dataclasses.replace(config, kernel=kernel)
    with configure(trace=True) as context:
        metrics = MergeSimulation(config).run_trial(trial=0)
    return metrics, context.trace.trials[0]


@pytest.mark.parametrize("config", MATRIX, ids=IDS)
def test_tracing_leaves_metrics_bit_identical(config):
    plain = MergeSimulation(config).run_trial(trial=0)
    traced, _ = _traced_trial(config, config.kernel)
    assert traced.to_dict() == plain.to_dict()


@pytest.mark.parametrize("config", MATRIX, ids=IDS)
def test_kernels_emit_identical_event_streams(config):
    _, reference = _traced_trial(config, "reference")
    _, fast = _traced_trial(config, "fast")
    assert len(reference.events) == len(fast.events)
    assert reference.events == fast.events
    assert reference.registry.to_dict() == fast.registry.to_dict()


@pytest.mark.parametrize("config", MATRIX, ids=IDS)
def test_trace_is_deterministic_across_repeats(config):
    _, first = _traced_trial(config, config.kernel)
    _, second = _traced_trial(config, config.kernel)
    assert first.events == second.events


@pytest.mark.parametrize("config", MATRIX, ids=IDS)
def test_service_spans_sum_to_drive_busy_ms(config):
    metrics, trial = _traced_trial(config, config.kernel)
    for disk, stats in enumerate(metrics.drive_stats):
        assert trial.service_busy_ms(disk) == pytest.approx(
            stats.busy_ms, abs=1e-6
        )


def test_service_spans_cover_write_drives_too():
    config = SimulationConfig(
        num_runs=6,
        num_disks=2,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=4,
        blocks_per_run=30,
        write_disks=2,
    )
    _, trial = _traced_trial(config, config.kernel)
    from repro.obs.events import SERVICE_KINDS

    write_busy = sum(
        event.duration_ms
        for event in trial.events
        if event.kind in SERVICE_KINDS and event.track.startswith("write-")
    )
    assert write_busy > 0


def test_fault_events_appear_under_fault_plans():
    config = SimulationConfig(
        num_runs=8,
        num_disks=4,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=8,
        blocks_per_run=40,
        fault_plan=transient_plan(0.2),
    )
    from repro.obs import EventKind

    metrics, trial = _traced_trial(config, config.kernel)
    faults = sum(stats.faults for stats in metrics.drive_stats)
    assert faults > 0
    assert len(trial.events_of(EventKind.FAULT)) == faults


def test_registry_snapshot_matches_metrics_after_finalize():
    config = MATRIX[2]
    metrics, trial = _traced_trial(config, config.kernel)
    registry = trial.registry
    assert (
        registry.counter("blocks_depleted").value == metrics.blocks_depleted
    )
    assert registry.gauge("total_time_ms").value == metrics.total_time_ms
