"""TraceEvent and EventKind basics."""

import pytest

from repro.obs import EventKind, TraceEvent, track_sort_key
from repro.obs.events import SERVICE_KINDS


def test_event_kind_values_are_stable_wire_names():
    assert EventKind.DEMAND_FETCH.value == "demand-fetch"
    assert EventKind.PREFETCH.value == "prefetch"
    assert EventKind.DRIVE_DEGRADED.value == "drive-degraded"
    assert EventKind.DEMAND_TIMEOUT.value == "demand-timeout"


def test_service_kinds_cover_both_fetch_flavours():
    assert EventKind.DEMAND_FETCH in SERVICE_KINDS
    assert EventKind.PREFETCH in SERVICE_KINDS
    assert EventKind.SEEK not in SERVICE_KINDS


def test_span_properties():
    span = TraceEvent(EventKind.TRANSFER, "disk-0", 10.0, duration_ms=2.5)
    assert span.is_span
    assert span.end_ms == pytest.approx(12.5)


def test_instant_properties():
    instant = TraceEvent(EventKind.FAULT, "disk-1", 5.0)
    assert not instant.is_span
    assert instant.end_ms == pytest.approx(5.0)


def test_round_trip_omits_none_fields():
    instant = TraceEvent(EventKind.FAULT, "disk-1", 5.0)
    data = instant.to_dict()
    assert "duration_ms" not in data
    assert "args" not in data
    assert TraceEvent.from_dict(data) == instant


def test_round_trip_preserves_args():
    span = TraceEvent(
        EventKind.DEMAND_FETCH, "disk-2", 1.0, duration_ms=3.0,
        args={"run": 4, "blocks": 2},
    )
    assert TraceEvent.from_dict(span.to_dict()) == span


def test_equality_distinguishes_kind_and_track():
    a = TraceEvent(EventKind.SEEK, "disk-0", 0.0, duration_ms=1.0)
    b = TraceEvent(EventKind.SEEK, "disk-1", 0.0, duration_ms=1.0)
    c = TraceEvent(EventKind.ROTATION, "disk-0", 0.0, duration_ms=1.0)
    assert a != b
    assert a != c
    assert a == TraceEvent(EventKind.SEEK, "disk-0", 0.0, duration_ms=1.0)


def test_track_sort_key_orders_cpu_disks_writes():
    tracks = ["write-0", "disk-10", "disk-2", "cpu", "other"]
    assert sorted(tracks, key=track_sort_key) == [
        "cpu", "disk-2", "disk-10", "write-0", "other"
    ]
