"""Exporters: Chrome trace_event JSON, JSONL, and the text timeline."""

import json

import pytest

from repro.api import configure
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.obs import (
    EventKind,
    TraceSession,
    chrome_trace,
    jsonl_lines,
    render_timeline,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_trace,
)


@pytest.fixture(scope="module")
def traced_session():
    """One small traced simulation shared by the export tests."""
    config = SimulationConfig(
        num_runs=6,
        num_disks=3,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=6,
        blocks_per_run=30,
        trials=2,
    )
    with configure(trace=True) as context:
        MergeSimulation(config).run()
    return context.trace


def _synthetic_session():
    session = TraceSession(name="synthetic")
    trial = session.trial(seed=1, config_description="cfg")
    trial.span(EventKind.DEMAND_FETCH, "disk-0", 0.0, 2.0, args={"run": 0})
    trial.instant(EventKind.FAULT, "disk-0", 1.0)
    trial.span(EventKind.CPU_MERGE, "cpu", 2.0, 2.5)
    return session


# ------------------------------------------------------------ chrome


def test_chrome_trace_structure(traced_session):
    document = chrome_trace(traced_session)
    assert document["displayTimeUnit"] == "ms"
    assert document["otherData"]["trials"] == 2
    phases = {event["ph"] for event in document["traceEvents"]}
    assert phases <= {"X", "i", "M"}
    # One process per trial, numbered from 1.
    pids = {
        event["pid"] for event in document["traceEvents"]
        if event["ph"] != "M"
    }
    assert pids == {1, 2}


def test_chrome_trace_times_are_microseconds():
    document = chrome_trace(_synthetic_session())
    spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
    fetch = next(e for e in spans if e["name"] == "demand-fetch")
    assert fetch["ts"] == pytest.approx(0.0)
    assert fetch["dur"] == pytest.approx(2000.0)  # 2 ms


def test_chrome_trace_names_every_track():
    document = chrome_trace(_synthetic_session())
    thread_names = {
        event["args"]["name"]
        for event in document["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    }
    assert thread_names == {"cpu", "disk-0"}


def test_chrome_trace_validates_against_schema(traced_session):
    assert validate_chrome_trace(chrome_trace(traced_session)) == []


def test_schema_catches_missing_fields():
    document = chrome_trace(_synthetic_session())
    del document["traceEvents"][0]["pid"]
    assert validate_chrome_trace(document)


def test_schema_catches_unknown_phase():
    document = chrome_trace(_synthetic_session())
    document["traceEvents"][-1]["ph"] = "Z"
    assert validate_chrome_trace(document)


def test_schema_requires_metadata_for_every_tid():
    document = chrome_trace(_synthetic_session())
    orphan = dict(
        next(e for e in document["traceEvents"] if e["ph"] == "X")
    )
    orphan["tid"] = 999
    document["traceEvents"].append(orphan)
    errors = validate_chrome_trace(document)
    assert any("metadata" in error for error in errors)


# ------------------------------------------------------------- jsonl


def test_jsonl_lines_carry_trial_events_registry(traced_session):
    lines = jsonl_lines(traced_session)
    types = [line["type"] for line in lines]
    assert types.count("trial") == 2
    assert types.count("registry") == 2
    assert types.count("event") == traced_session.total_events


def test_jsonl_event_lines_reference_their_trial():
    lines = jsonl_lines(_synthetic_session())
    events = [line for line in lines if line["type"] == "event"]
    assert all(line["trial"] == 0 for line in events)
    assert events[0]["kind"] == "demand-fetch"


# ----------------------------------------------------- file dispatch


def test_write_trace_dispatches_on_suffix(tmp_path, traced_session):
    chrome_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "trace.jsonl"
    assert write_trace(traced_session, chrome_path) == "chrome"
    assert write_trace(traced_session, jsonl_path) == "jsonl"
    assert validate_chrome_trace_file(chrome_path) == []
    first = json.loads(jsonl_path.read_text().splitlines()[0])
    assert first["type"] == "trial"


# ---------------------------------------------------------- timeline


def test_timeline_renders_all_tracks(traced_session):
    text = render_timeline(traced_session.trials[0])
    assert "cpu" in text
    assert "disk-0" in text and "disk-2" in text
    assert "legend:" in text


def test_timeline_marks_demand_service():
    text = render_timeline(_synthetic_session().trials[0], width=10)
    assert "D" in text
