"""Documentation correctness: the quickstart and tutorial snippets run,

every documented experiment id exists, and the examples at least
compile.  Docs that silently rot are worse than no docs."""

import ast
import py_compile
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def test_readme_quickstart_snippet_runs():
    """The exact code shown in README's Quickstart section."""
    from repro import simulate_merge, PrefetchStrategy

    result = simulate_merge(
        num_runs=25, num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=10,
        cache_capacity=800, trials=1, blocks_per_run=100,
    )
    assert result.total_time_s.mean > 0
    assert 0 <= result.success_ratio.mean <= 1


def test_tutorial_sweep_snippet_runs(tmp_path):
    """The parallel-sweep walkthrough from docs/TUTORIAL.md section 6
    (shrunk to smoke-test size)."""
    from repro.sweep import ResultStore, SweepEngine, SweepSpec

    spec = SweepSpec(
        name="depth-sweep",
        base={"num_runs": 4, "strategy": "intra-run", "blocks_per_run": 30},
        grid={"num_disks": [1, 2], "prefetch_depth": [2, 3]},
        trials=1,
    )
    engine = SweepEngine(store=ResultStore(tmp_path), workers=1,
                         timeout_s=120.0, retries=1)
    result = engine.run_spec(spec)
    assert len(result.cells) == 4
    assert all(cell.total_time_s.mean > 0 for cell in result.cells)
    rerun = engine.run_spec(spec)
    assert rerun.stats.cache_hit_ratio == 1.0


def test_tutorial_kernel_snippet_runs():
    """The sim-kernel walkthrough from docs/TUTORIAL.md section 9."""
    from repro.sim import Simulator, Store

    sim = Simulator()
    queue = Store(sim)

    def producer():
        for i in range(3):
            yield sim.timeout(1.0)
            queue.put(i)

    def consumer(log):
        while True:
            item = yield queue.get()
            log.append((sim.now, item))

    log = []
    sim.process(producer())
    sim.process(consumer(log))
    sim.run(until=10.0)
    assert log == [(1.0, 0), (2.0, 1), (3.0, 2)]


def test_tutorial_analysis_imports_exist():
    from repro.analysis import (  # noqa: F401
        estimate_sort_time_s,
        expected_concurrency,
        fan_in_for_cache,
        inter_run_sync_total_s,
        lower_bound_total_s,
        plan_passes,
        predict,
    )


def _documented_experiment_ids(text: str) -> set[str]:
    pattern = re.compile(r"\b((?:fig|tab|ablation|ext)-[0-9a-z.\-]+)")
    return {match.rstrip(".") for match in pattern.findall(text)}


@pytest.mark.parametrize("doc", ["DESIGN.md", "EXPERIMENTS.md", "README.md"])
def test_documented_experiment_ids_exist(doc):
    from repro.experiments import all_experiments

    known = {e.experiment_id for e in all_experiments()}
    # Figure ids like fig-3.2 appear without a letter in prose; accept
    # any documented id that is a known id or a prefix of one.
    text = (REPO / doc).read_text()
    for documented in _documented_experiment_ids(text):
        if ".." in documented:  # range notation like fig-3.6a..c
            documented = documented.split("..")[0]
        ok = documented in known or any(
            experiment.startswith(documented) for experiment in known
        )
        assert ok, f"{doc} mentions unknown experiment {documented!r}"


def test_all_examples_compile():
    examples = sorted((REPO / "examples").glob("*.py"))
    assert len(examples) >= 3, "the deliverable requires >= 3 examples"
    for path in examples:
        py_compile.compile(str(path), doraise=True)


def test_all_examples_have_main_guard():
    for path in sorted((REPO / "examples").glob("*.py")):
        tree = ast.parse(path.read_text())
        has_main = any(
            isinstance(node, ast.FunctionDef) and node.name == "main"
            for node in tree.body
        )
        assert has_main, f"{path.name} lacks a main() function"
        assert '__name__ == "__main__"' in path.read_text()


def test_readme_cli_commands_exist():
    """Every `python -m repro <cmd>` the README shows must parse."""
    from repro.cli import _build_parser

    parser = _build_parser()
    subparsers = next(
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    known = set(subparsers.choices)
    text = (REPO / "README.md").read_text()
    for match in re.findall(r"python -m repro ([a-z\-]+)", text):
        assert match in known, f"README shows unknown command {match!r}"


def test_design_inventory_modules_exist():
    """Every module path DESIGN.md's inventory names must import."""
    import importlib

    text = (REPO / "DESIGN.md").read_text()
    for name in re.findall(r"`(repro(?:\.[a-z_]+)+)`", text):
        module_name = name
        attribute = None
        try:
            importlib.import_module(module_name)
            continue
        except ModuleNotFoundError:
            module_name, _, attribute = name.rpartition(".")
        module = importlib.import_module(module_name)
        assert hasattr(module, attribute), f"DESIGN.md names missing {name}"
