"""End-to-end CLI coverage for ``repro bench`` and ``--kernel`` flags."""

import json

import pytest

from repro.bench import validate_report
from repro.cli import main


def test_bench_list(capsys):
    assert main(["bench", "list"]) == 0
    out = capsys.readouterr().out
    assert "merge-d5" in out
    assert "smoke-d2" in out


def test_bench_run_writes_valid_report(tmp_path, capsys):
    code = main([
        "bench", "run",
        "--scenario", "smoke-d2",
        "--repeats", "1",
        "--warmup", "0",
        "--out-dir", str(tmp_path),
    ])
    assert code == 0
    path = tmp_path / "BENCH_smoke-d2.json"
    assert path.exists()
    data = json.loads(path.read_text())
    assert validate_report(data) == []
    # smoke-d2 inherits the registry default, so every registered
    # kernel gets a variant.
    assert set(data["variants"]) == {"reference", "fast", "batch"}
    assert "speedup" in capsys.readouterr().out


def test_bench_run_unknown_scenario(tmp_path, capsys):
    code = main([
        "bench", "run", "--scenario", "nope", "--out-dir", str(tmp_path)
    ])
    assert code == 2
    assert "unknown bench scenario" in capsys.readouterr().err


def test_bench_compare_cli(tmp_path, capsys):
    main([
        "bench", "run",
        "--scenario", "smoke-d2",
        "--repeats", "1",
        "--warmup", "0",
        "--out-dir", str(tmp_path),
    ])
    capsys.readouterr()
    path = str(tmp_path / "BENCH_smoke-d2.json")
    assert main(["bench", "compare", path, path, "--threshold", "0.5"]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_bench_compare_detects_regression(tmp_path, capsys):
    main([
        "bench", "run",
        "--scenario", "smoke-d2",
        "--repeats", "1",
        "--warmup", "0",
        "--out-dir", str(tmp_path),
    ])
    capsys.readouterr()
    baseline_path = tmp_path / "BENCH_smoke-d2.json"
    slower = json.loads(baseline_path.read_text())
    for variant in slower["variants"].values():
        variant["median_ns"] *= 10.0
    slower_path = tmp_path / "slower.json"
    slower_path.write_text(json.dumps(slower))
    code = main([
        "bench", "compare", str(baseline_path), str(slower_path),
        "--threshold", "2.0",
    ])
    assert code == 1
    assert "REGRESSED" in capsys.readouterr().out


def test_bench_compare_notes_untracked_variants(tmp_path, capsys):
    """A kernel with no committed baseline variant is noted on stderr,
    not raised: stale baselines must not block newly registered
    kernels."""
    main([
        "bench", "run",
        "--scenario", "smoke-d2",
        "--repeats", "1",
        "--warmup", "0",
        "--out-dir", str(tmp_path),
    ])
    capsys.readouterr()
    current_path = tmp_path / "BENCH_smoke-d2.json"
    stale = json.loads(current_path.read_text())
    del stale["variants"]["batch"]
    stale["speedup"] = None
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(stale))
    code = main([
        "bench", "compare", str(baseline_path), str(current_path),
        "--threshold", "0.5",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "no regressions" in captured.out
    assert "no baseline for variant(s) batch" in captured.err
    assert "repro bench run" in captured.err


def test_bench_compare_missing_baseline_names_the_fix(tmp_path, capsys):
    """Day-one UX: no baseline yet must say how to create one, not dump
    a FileNotFoundError traceback."""
    missing = tmp_path / "BENCH_never-ran.json"
    code = main(["bench", "compare", str(missing), str(missing)])
    assert code == 2
    err = capsys.readouterr().err
    assert str(missing) in err
    assert "no baseline report" in err
    assert "repro bench run" in err


def test_bench_compare_rejects_corrupt_file(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    code = main(["bench", "compare", str(bad), str(bad)])
    assert code == 2
    assert "error" in capsys.readouterr().err


@pytest.mark.parametrize("kernel", ["reference", "fast"])
def test_simulate_kernel_flag(kernel, capsys):
    code = main([
        "simulate", "-k", "4", "-D", "2",
        "--strategy", "intra-run", "-N", "2",
        "--blocks", "20", "--trials", "1", "--kernel", kernel,
    ])
    assert code == 0
    assert "total time" in capsys.readouterr().out


def test_simulate_kernel_outputs_match(capsys):
    outputs = []
    for kernel in ("reference", "fast"):
        main([
            "simulate", "-k", "4", "-D", "2",
            "--strategy", "intra-run", "-N", "2",
            "--blocks", "20", "--trials", "1", "--kernel", kernel,
        ])
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]


def test_sweep_kernel_flag_shares_cache(tmp_path, capsys):
    """A reference-kernel sweep fully warms the cache for a fast-kernel
    rerun of the same grid: the second pass must be 100% hits."""
    common = [
        "sweep", "-k", "4", "-D", "1,2", "--strategy", "intra-run",
        "-N", "2", "--blocks", "20", "--trials", "1", "--quiet",
        "--cache-dir", str(tmp_path / "cache"),
        "--progress-json", str(tmp_path / "progress.json"),
    ]
    assert main(common + ["--kernel", "reference", "--name", "ref"]) == 0
    assert main(common + ["--kernel", "fast", "--name", "fast"]) == 0
    capsys.readouterr()
    progress = json.loads((tmp_path / "progress.json").read_text())
    assert progress["total"] == 2  # D in {1, 2}
    assert progress["computed"] == 0
    assert progress["cached"] == 2
