"""Cross-validation: every registered kernel is bit-identical to the reference.

This is the contract that makes the ``kernel`` axis safe everywhere —
experiments, sweeps (shared cache entries!), fault studies: for any
configuration and seed, every kernel in the :mod:`repro.sim.kernel`
registry produces byte-for-byte equal ``MergeMetrics.to_dict()``
output.  The ``batch`` kernel additionally proves its flattened
group-execution path (`repro.api.run_trials` routes whole trial groups
through :func:`repro.sim.batch.run_trial_batch`) against the same bar.
"""

import dataclasses

import pytest

from repro import api
from repro.api import configure
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.disks.drive import QueueDiscipline
from repro.faults.plan import fail_slow_plan, transient_plan
from repro.sim import FastSimulator, Simulator, create_kernel, kernel_names


def _trial_dict(config: SimulationConfig, kernel: str, trial: int = 0) -> dict:
    config = dataclasses.replace(config, kernel=kernel)
    return MergeSimulation(config).run_trial(trial=trial).to_dict()


#: Every registered kernel that is *not* the baseline itself.
NON_REFERENCE = [name for name in kernel_names() if name != "reference"]

#: A deliberately diverse configuration matrix: every strategy family,
#: single and multi disk, sync and async, SSTF scheduling, CPU cost,
#: streamed sequential requests, and both fault flavours.
MATRIX = [
    SimulationConfig(num_runs=6, num_disks=1, blocks_per_run=40),
    SimulationConfig(
        num_runs=8,
        num_disks=1,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=6,
        blocks_per_run=50,
    ),
    SimulationConfig(
        num_runs=10,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        blocks_per_run=60,
    ),
    SimulationConfig(
        num_runs=10,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        blocks_per_run=60,
        synchronized=True,
    ),
    SimulationConfig(
        num_runs=8,
        num_disks=4,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=4,
        blocks_per_run=40,
        cpu_ms_per_block=0.5,
        queue_discipline=QueueDiscipline.SSTF,
    ),
    SimulationConfig(
        num_runs=8,
        num_disks=4,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=5,
        blocks_per_run=40,
        stream_across_requests=True,
    ),
    SimulationConfig(
        num_runs=10,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        blocks_per_run=50,
        fault_plan=transient_plan(0.1),
    ),
    SimulationConfig(
        num_runs=8,
        num_disks=4,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=5,
        blocks_per_run=40,
        fault_plan=fail_slow_plan(1, 3.0),
    ),
]


@pytest.mark.parametrize("kernel", NON_REFERENCE)
@pytest.mark.parametrize("config", MATRIX, ids=lambda c: c.describe())
@pytest.mark.parametrize("seed", [1, 1992])
def test_kernel_bit_identical(config, kernel, seed):
    config = dataclasses.replace(config, base_seed=seed)
    assert _trial_dict(config, kernel) == _trial_dict(config, "reference")


@pytest.mark.parametrize("kernel", NON_REFERENCE)
def test_kernel_identical_across_trials(kernel):
    config = SimulationConfig(
        num_runs=8,
        num_disks=3,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=6,
        blocks_per_run=40,
        trials=3,
    )
    for trial in range(config.trials):
        assert _trial_dict(config, kernel, trial) == _trial_dict(
            config, "reference", trial
        )


@pytest.mark.parametrize("config", MATRIX, ids=lambda c: c.describe())
def test_batch_group_execution_bit_identical(config):
    """Whole-group batch dispatch matches per-trial reference runs."""
    batch_config = dataclasses.replace(config, kernel="batch")
    trials = [0, 1, 2]
    grouped = api.run_trials([batch_config] * len(trials), trials=trials)
    for trial, metrics in zip(trials, grouped):
        assert metrics.to_dict() == _trial_dict(config, "reference", trial)


def test_unknown_kernel_rejected_by_config():
    with pytest.raises(ValueError, match="unknown simulation kernel"):
        SimulationConfig(num_runs=4, num_disks=1, kernel="turbo")


def test_unknown_kernel_rejected_by_factory():
    with pytest.raises(ValueError, match="choose one of batch, fast, reference"):
        create_kernel("turbo")


def test_kernel_registry():
    assert kernel_names() == ["batch", "fast", "reference"]
    assert isinstance(create_kernel("fast"), FastSimulator)
    # The batch tier's per-trial factory is the fast simulator; its
    # batched entry is the flattened runner (see repro.sim.batch).
    assert isinstance(create_kernel("batch"), FastSimulator)
    assert type(create_kernel("reference")) is Simulator


def test_kernel_context_rewrites_config():
    config = SimulationConfig(num_runs=4, num_disks=1, blocks_per_run=20)
    assert MergeSimulation(config).config.kernel == "reference"
    with configure(kernel="fast"):
        assert MergeSimulation(config).config.kernel == "fast"
    assert MergeSimulation(config).config.kernel == "reference"


def test_kernel_context_preserves_results():
    config = SimulationConfig(
        num_runs=6,
        num_disks=2,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=4,
        blocks_per_run=30,
        trials=2,
    )
    baseline = MergeSimulation(config).run()
    with configure(kernel="fast"):
        overridden = MergeSimulation(config).run()
    assert [t.to_dict() for t in overridden.trials] == [
        t.to_dict() for t in baseline.trials
    ]
