"""The bench comparator: regression verdicts and mismatch handling."""

import pytest

from repro.bench import (
    BenchReport,
    VariantResult,
    compare_reports,
    missing_baseline_variants,
    regressions,
    render_comparison,
)


def _report(scenario: str, medians: dict[str, float]) -> BenchReport:
    variants = {
        kernel: VariantResult(
            kernel=kernel,
            repeats=3,
            warmup=1,
            median_ns=median,
            p10_ns=median * 0.9,
            p90_ns=median * 1.1,
            samples_ns=[int(median)] * 3,
            events_per_sec=1e9 / median,
            peak_rss_kb=1000,
        )
        for kernel, median in medians.items()
    }
    return BenchReport(
        scenario=scenario,
        description="synthetic",
        workload_events=1,
        variants=variants,
        speedup=None,
        provenance={},
    )


def test_identical_reports_pass():
    baseline = _report("s", {"reference": 1e6, "fast": 5e5})
    rows = compare_reports(baseline, baseline, threshold=0.25)
    assert len(rows) == 2
    assert regressions(rows) == []
    assert all(row.ratio == 1.0 for row in rows)


def test_regression_detected_per_variant():
    baseline = _report("s", {"reference": 1e6, "fast": 5e5})
    current = _report("s", {"reference": 1e6, "fast": 7e5})  # fast 1.4x
    rows = compare_reports(baseline, current, threshold=0.25)
    regressed = regressions(rows)
    assert [row.kernel for row in regressed] == ["fast"]
    assert "REGRESSED" in render_comparison(rows)


def test_speedup_never_fails():
    baseline = _report("s", {"reference": 1e6})
    current = _report("s", {"reference": 1e5})  # 10x faster
    assert regressions(compare_reports(baseline, current, 0.25)) == []


def test_threshold_boundary():
    baseline = _report("s", {"reference": 100.0})
    at_limit = _report("s", {"reference": 125.0})
    beyond = _report("s", {"reference": 126.0})
    assert regressions(compare_reports(baseline, at_limit, 0.25)) == []
    assert len(regressions(compare_reports(baseline, beyond, 0.25))) == 1


def test_scenario_mismatch_rejected():
    with pytest.raises(ValueError, match="scenario mismatch"):
        compare_reports(
            _report("a", {"reference": 1.0}),
            _report("b", {"reference": 1.0}),
        )


def test_dropped_variant_rejected():
    baseline = _report("s", {"reference": 1e6, "fast": 5e5})
    current = _report("s", {"reference": 1e6})
    with pytest.raises(ValueError, match="missing variant 'fast'"):
        compare_reports(baseline, current)


def test_new_variant_compares_shared_and_reports_the_rest():
    """A kernel registered after the baseline was committed must not
    break the comparison: shared variants get verdicts, the new one is
    listed for a baseline refresh."""
    baseline = _report("s", {"reference": 1e6, "fast": 5e5})
    current = _report("s", {"reference": 1e6, "fast": 5e5, "batch": 2e5})
    rows = compare_reports(baseline, current, threshold=0.25)
    assert sorted(row.kernel for row in rows) == ["fast", "reference"]
    assert regressions(rows) == []
    assert missing_baseline_variants(baseline, current) == ["batch"]
    assert missing_baseline_variants(baseline, baseline) == []


def test_bad_threshold_rejected():
    report = _report("s", {"reference": 1.0})
    with pytest.raises(ValueError, match="threshold"):
        compare_reports(report, report, threshold=0.0)
