"""The sweep cache is kernel-independent.

Because both kernels produce bit-identical metrics, a result computed
under either must live under one cache key — a sweep on the fast kernel
reuses everything a reference-kernel sweep already paid for (and vice
versa).
"""

import dataclasses

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.sweep.keys import cache_key, config_from_dict, config_to_dict


def _config(**kwargs) -> SimulationConfig:
    defaults = dict(
        num_runs=6,
        num_disks=2,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=4,
        blocks_per_run=30,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def test_cache_key_shared_across_kernels():
    reference = _config(kernel="reference")
    fast = _config(kernel="fast")
    for seed in (0, 1, 1992):
        assert cache_key(reference, seed) == cache_key(fast, seed)


def test_cache_key_still_distinguishes_real_parameters():
    reference = _config(kernel="reference")
    deeper = _config(kernel="fast", prefetch_depth=5)
    assert cache_key(reference, 1) != cache_key(deeper, 1)


def test_describe_is_kernel_independent():
    assert _config(kernel="fast").describe() == _config(
        kernel="reference"
    ).describe()


def test_kernel_round_trips_through_config_dict():
    config = _config(kernel="fast")
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt.kernel == "fast"
    assert dataclasses.asdict(rebuilt) == dataclasses.asdict(config)
