"""The measurement harness: timing, percentiles, report schema."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    BenchScenario,
    bench_filename,
    get_scenario,
    measure,
    percentile,
    run_scenario,
    scenario_names,
    timed_call,
    validate_report,
)


def test_timed_call_returns_result_and_elapsed():
    result, elapsed_ns = timed_call(lambda: 42)
    assert result == 42
    assert isinstance(elapsed_ns, int) and elapsed_ns >= 0


def test_percentile_interpolates():
    samples = [10, 20, 30, 40, 50]
    assert percentile(samples, 0.5) == 30
    assert percentile(samples, 0.0) == 10
    assert percentile(samples, 1.0) == 50
    assert percentile(samples, 0.25) == 20
    assert percentile([7], 0.9) == 7.0


def test_percentile_rejects_bad_input():
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1], 1.5)


def test_measure_counts_calls():
    calls = []
    measurement = measure(lambda: calls.append(1), repeats=4, warmup=2)
    assert len(calls) == 6
    assert len(measurement.samples_ns) == 4
    assert measurement.p10_ns <= measurement.median_ns <= measurement.p90_ns


def test_measure_rejects_bad_repeats():
    with pytest.raises(ValueError):
        measure(lambda: None, repeats=0)
    with pytest.raises(ValueError):
        measure(lambda: None, warmup=-1)


def _tiny_scenario() -> BenchScenario:
    return BenchScenario(
        name="unit-tiny",
        description="a trivial workload for harness tests",
        workload_events=100,
        build=lambda kernel: (lambda: sum(range(500))),
        repeats=3,
        warmup=1,
    )


def test_run_scenario_produces_valid_report(tmp_path):
    report = run_scenario(_tiny_scenario())
    data = report.to_dict()
    assert validate_report(data) == []
    assert data["schema_version"] == BENCH_SCHEMA_VERSION
    # The default kernel list comes from the registry, so the harness
    # measures every registered kernel.
    assert set(data["variants"]) == {"reference", "fast", "batch"}
    assert report.speedup is not None
    for variant in report.variants.values():
        assert variant.events_per_sec > 0
        assert variant.peak_rss_kb > 0
        assert len(variant.samples_ns) == 3
    path = report.write(tmp_path / bench_filename(report.scenario))
    assert path.name == "BENCH_unit-tiny.json"
    reloaded = BenchReport.load(path)
    assert reloaded.to_dict() == data


def test_report_render_mentions_speedup():
    text = run_scenario(_tiny_scenario()).render()
    assert "unit-tiny" in text
    assert "speedup" in text


def test_validate_report_flags_corruption(tmp_path):
    report = run_scenario(_tiny_scenario())
    data = report.to_dict()

    missing = dict(data)
    del missing["workload_events"]
    assert any("workload_events" in e for e in validate_report(missing))

    wrong_schema = json.loads(json.dumps(data))
    wrong_schema["schema_version"] = 99
    assert any("schema_version" in e for e in validate_report(wrong_schema))

    bad_variant = json.loads(json.dumps(data))
    del bad_variant["variants"]["fast"]["median_ns"]
    assert any("median_ns" in e for e in validate_report(bad_variant))

    assert validate_report([1, 2, 3])  # not even an object

    with pytest.raises(ValueError, match="invalid bench report"):
        BenchReport.from_dict(missing)


def test_registered_scenarios_are_well_formed():
    names = scenario_names()
    assert "merge-d5" in names
    assert "smoke-d2" in names
    for name in names:
        scenario = get_scenario(name)
        assert scenario.workload_events > 0
        assert scenario.repeats >= 1
        for kernel in scenario.kernels:
            assert callable(scenario.build(kernel))


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown bench scenario"):
        get_scenario("nope")


def test_smoke_scenario_runs_and_matches_across_kernels():
    """The CI smoke scenario really exercises both kernels on one
    workload — and their simulation results agree."""
    scenario = get_scenario("smoke-d2")
    results = {kernel: scenario.build(kernel)() for kernel in scenario.kernels}
    reference = results["reference"]
    fast = results["fast"]
    assert [t.to_dict() for t in fast.trials] == [
        t.to_dict() for t in reference.trials
    ]
