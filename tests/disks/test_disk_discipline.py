"""Tests for the SSTF queue discipline (FIFO is covered elsewhere)."""

import pytest

from repro.core.parameters import DiskParameters
from repro.disks.drive import DiskDrive, QueueDiscipline
from repro.disks.geometry import PAPER_GEOMETRY
from repro.disks.request import BlockFetchRequest, FetchKind
from repro.sim import Simulator


class FixedRotation:
    def __init__(self, value):
        self.value = value

    def uniform(self, low, high):
        return self.value


PARAMS = DiskParameters(
    seek_ms_per_cylinder=1.0,
    avg_rotational_latency_ms=5.0,
    transfer_ms_per_block=1.0,
)


def make_drive(sim, discipline):
    return DiskDrive(
        sim,
        drive_id=0,
        geometry=PAPER_GEOMETRY,
        parameters=PARAMS,
        rng=FixedRotation(2.0),
        discipline=discipline,
        address_of=lambda req: req.first_block,
    )


_RUN_COUNTER = iter(range(10_000))


def submit(sim, drive, first_block, kind=FetchKind.PREFETCH, run=None):
    """Queue a one-block request; distinct run per call by default so
    SSTF is free to reorder (same-run requests are pinned to FIFO)."""
    if run is None:
        run = next(_RUN_COUNTER)
    request = BlockFetchRequest(sim, run=run, first_block=first_block,
                                count=1, kind=kind)
    drive.submit(request)
    return request


def finish_order(requests):
    return sorted(range(len(requests)), key=lambda i: requests[i].finish_time)


def test_sstf_services_nearest_cylinder_first():
    sim = Simulator()
    drive = make_drive(sim, QueueDiscipline.SSTF)
    # Busy the drive with a request at cylinder 0, then queue far/near.
    head_holder = submit(sim, drive, 0)
    far = submit(sim, drive, 64 * 100)  # cylinder 100
    near = submit(sim, drive, 64 * 5)  # cylinder 5
    sim.run()
    assert finish_order([head_holder, far, near]) == [0, 2, 1]


def test_fifo_ignores_proximity():
    sim = Simulator()
    drive = make_drive(sim, QueueDiscipline.FIFO)
    first = submit(sim, drive, 0)
    far = submit(sim, drive, 64 * 100)
    near = submit(sim, drive, 64 * 5)
    sim.run()
    assert finish_order([first, far, near]) == [0, 1, 2]


def test_sstf_demand_preempts_prefetches():
    sim = Simulator()
    drive = make_drive(sim, QueueDiscipline.SSTF)
    holder = submit(sim, drive, 0)
    requests = {}

    def queue_contenders():
        # While the holder is being serviced (it takes 3 ms), queue a
        # nearby prefetch and a far demand fetch.
        yield sim.timeout(1.0)
        requests["near"] = submit(sim, drive, 64 * 1)
        requests["demand"] = submit(sim, drive, 64 * 200, kind=FetchKind.DEMAND)

    sim.process(queue_contenders())
    sim.run()
    # The demand request is served before the nearer prefetch.
    order = finish_order([holder, requests["near"], requests["demand"]])
    assert order == [0, 2, 1]


def test_sstf_orders_multiple_demands_fifo():
    sim = Simulator()
    drive = make_drive(sim, QueueDiscipline.SSTF)
    holder = submit(sim, drive, 0)
    requests = {}

    def queue_contenders():
        yield sim.timeout(1.0)
        requests["far"] = submit(sim, drive, 64 * 300, kind=FetchKind.DEMAND)
        requests["near"] = submit(sim, drive, 64 * 2, kind=FetchKind.DEMAND)

    sim.process(queue_contenders())
    sim.run()
    # Demands keep arrival order among themselves (no starvation).
    order = finish_order([holder, requests["far"], requests["near"]])
    assert order == [0, 1, 2]


def test_sstf_reduces_total_seek_distance():
    sim_fifo, sim_sstf = Simulator(), Simulator()
    fifo = make_drive(sim_fifo, QueueDiscipline.FIFO)
    sstf = make_drive(sim_sstf, QueueDiscipline.SSTF)
    pattern = [0, 64 * 50, 64 * 1, 64 * 51, 64 * 2]
    for block in pattern:
        submit(sim_fifo, fifo, block)
        submit(sim_sstf, sstf, block)
    sim_fifo.run()
    sim_sstf.run()
    assert sstf.stats.seek_cylinders < fifo.stats.seek_cylinders


def test_drive_goes_idle_and_wakes_for_late_request():
    sim = Simulator()
    drive = make_drive(sim, QueueDiscipline.SSTF)
    early = submit(sim, drive, 0)

    late_holder = {}

    def body():
        yield sim.timeout(100.0)
        late_holder["request"] = submit(sim, drive, 64)

    sim.process(body())
    sim.run()
    assert early.finish_time == pytest.approx(2.0 + 1.0)  # rot + transfer
    late = late_holder["request"]
    assert late.start_service_time == pytest.approx(100.0)


def test_sstf_never_reorders_one_runs_requests():
    """Regression: two prefetch groups for the same run must be serviced
    in issue order even when the later one is closer to the head --
    otherwise blocks arrive out of order and the cache rejects them."""
    sim = Simulator()
    drive = make_drive(sim, QueueDiscipline.SSTF)
    holder = submit(sim, drive, 64 * 10)  # parks the head at cylinder 10
    first = submit(sim, drive, 64 * 100)  # run 0, far
    second_request = BlockFetchRequest(
        sim, run=0, first_block=64 * 100 + 1, count=1, kind=FetchKind.PREFETCH
    )
    drive.submit(second_request)
    other_run = BlockFetchRequest(
        sim, run=1, first_block=64 * 11, count=1, kind=FetchKind.PREFETCH
    )
    drive.submit(other_run)
    sim.run()
    # Run 0's two requests finish in issue order; run 1's near request
    # may jump ahead of both.
    assert first.finish_time < second_request.finish_time
    assert other_run.finish_time < first.finish_time


def test_sstf_inter_run_merge_completes():
    """Regression: a full inter-run merge under SSTF (the configuration
    that crashed the harness) runs to completion."""
    from repro.core.merge_sim import MergeTrial
    from repro.core.parameters import PrefetchStrategy, SimulationConfig

    config = SimulationConfig(
        num_runs=10,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=5,
        blocks_per_run=60,
        queue_discipline=QueueDiscipline.SSTF,
        trials=1,
    )
    metrics = MergeTrial(config, seed=11).run()
    assert metrics.blocks_depleted == 600


def test_queue_length_tracks_pending():
    sim = Simulator()
    drive = make_drive(sim, QueueDiscipline.SSTF)
    for block in (0, 64, 128):
        submit(sim, drive, block)
    assert drive.queue_length == 3
    sim.run()
    assert drive.queue_length == 0
    assert drive.stats.max_queue_length == 3
