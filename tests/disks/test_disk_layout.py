"""Tests for run placement across the disk array."""

import pytest

from repro.disks.geometry import DiskGeometry
from repro.disks.layout import RunLayout


def layout(k=25, d=5, blocks=1000):
    return RunLayout(num_runs=k, num_disks=d, blocks_per_run=blocks)


def test_round_robin_assignment():
    lay = layout()
    assert lay.disk_of_run(0) == 0
    assert lay.disk_of_run(4) == 4
    assert lay.disk_of_run(5) == 0
    assert lay.disk_of_run(24) == 4


def test_each_disk_gets_equal_share():
    lay = layout(k=25, d=5)
    for disk in range(5):
        assert len(lay.runs_on_disk(disk)) == 5


def test_uneven_distribution_ceiling():
    lay = layout(k=7, d=3)
    assert lay.max_runs_per_disk == 3
    sizes = [len(lay.runs_on_disk(d)) for d in range(3)]
    assert sorted(sizes) == [2, 2, 3]


def test_runs_contiguous_on_disk():
    lay = layout()
    # Run 0 is slot 0 of disk 0; run 5 is slot 1 of disk 0.
    assert lay.slot_of_run(0) == 0
    assert lay.slot_of_run(5) == 1
    assert lay.block_address(0, 0) == 0
    assert lay.block_address(0, 999) == 999
    assert lay.block_address(5, 0) == 1000


def test_block_addresses_never_overlap_on_a_disk():
    lay = layout(k=10, d=2, blocks=100)
    for disk in range(2):
        seen = set()
        for run in lay.runs_on_disk(disk):
            for block in range(100):
                address = lay.block_address(run, block)
                assert address not in seen
                seen.add(address)
        assert len(seen) == 5 * 100


def test_cylinder_of_matches_m():
    lay = layout()
    # m = 15.625: run slot 1 starts at cylinder floor(1000/64) = 15.
    assert lay.cylinder_of(5, 0) == 15
    assert lay.cylinder_of(0, 0) == 0
    assert lay.run_cylinders == pytest.approx(15.625)


def test_single_disk_layout():
    lay = layout(k=25, d=1)
    assert lay.runs_on_disk(0) == list(range(25))
    assert lay.block_address(24, 999) == 25 * 1000 - 1


def test_out_of_range_rejected():
    lay = layout()
    with pytest.raises(ValueError):
        lay.disk_of_run(25)
    with pytest.raises(ValueError):
        lay.block_address(0, 1000)
    with pytest.raises(ValueError):
        lay.runs_on_disk(5)


def test_disk_too_small_rejected():
    tiny = DiskGeometry(heads=1, sectors_per_track=1, cylinders=2,
                        bytes_per_sector=4096)
    with pytest.raises(ValueError):
        RunLayout(num_runs=10, num_disks=1, blocks_per_run=1000, geometry=tiny)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        RunLayout(num_runs=0, num_disks=1, blocks_per_run=10)
    with pytest.raises(ValueError):
        RunLayout(num_runs=1, num_disks=0, blocks_per_run=10)
    with pytest.raises(ValueError):
        RunLayout(num_runs=1, num_disks=1, blocks_per_run=0)
