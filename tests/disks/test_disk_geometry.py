"""Tests for disk geometry and block addressing."""

import pytest

from repro.disks.geometry import (
    PAPER_GEOMETRY,
    PAPER_GEOMETRY_SECTOR_VIEW,
    DiskGeometry,
)


def test_paper_geometry_has_64_blocks_per_cylinder():
    assert PAPER_GEOMETRY.blocks_per_cylinder == 64


def test_paper_geometry_cylinder_is_256_kib():
    assert PAPER_GEOMETRY.bytes_per_cylinder == 256 * 1024


def test_sector_view_matches_block_view():
    """The 16x32x512 sector-level view and the 4x16x4096 block-level
    view describe the same cylinder capacity."""
    assert (
        PAPER_GEOMETRY.bytes_per_cylinder
        == PAPER_GEOMETRY_SECTOR_VIEW.bytes_per_cylinder
    )
    assert (
        PAPER_GEOMETRY.blocks_per_cylinder
        == PAPER_GEOMETRY_SECTOR_VIEW.blocks_per_cylinder
    )


def test_cylinder_of_block():
    geometry = PAPER_GEOMETRY
    assert geometry.cylinder_of(0) == 0
    assert geometry.cylinder_of(63) == 0
    assert geometry.cylinder_of(64) == 1
    assert geometry.cylinder_of(999) == 15


def test_run_spans_15_625_cylinders():
    """A 1000-block run covers m = 15.625 cylinders."""
    assert 1000 / PAPER_GEOMETRY.blocks_per_cylinder == pytest.approx(15.625)


def test_seek_distance():
    geometry = PAPER_GEOMETRY
    assert geometry.seek_distance(0, 0) == 0
    assert geometry.seek_distance(0, 64) == 1
    assert geometry.seek_distance(640, 0) == 10
    assert geometry.seek_distance(0, 640) == 10


def test_block_address_out_of_range_rejected():
    geometry = PAPER_GEOMETRY
    with pytest.raises(ValueError):
        geometry.cylinder_of(-1)
    with pytest.raises(ValueError):
        geometry.cylinder_of(geometry.capacity_blocks)


def test_capacity():
    assert PAPER_GEOMETRY.capacity_blocks == 64 * 825
    assert PAPER_GEOMETRY.capacity_bytes == 256 * 1024 * 825


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        DiskGeometry(heads=0)
    with pytest.raises(ValueError):
        DiskGeometry(sectors_per_track=-1)


def test_non_divisible_block_size_rejected():
    with pytest.raises(ValueError):
        DiskGeometry(heads=1, sectors_per_track=1, bytes_per_sector=512,
                     block_bytes=4096)


def test_custom_geometry():
    geometry = DiskGeometry(
        heads=2, sectors_per_track=8, cylinders=100,
        bytes_per_sector=1024, block_bytes=2048,
    )
    assert geometry.blocks_per_cylinder == 8
    assert geometry.capacity_blocks == 800
