"""Tests for the drive service process, with deterministic rotation."""

import pytest

from repro.core.parameters import DiskParameters
from repro.disks.drive import DiskDrive
from repro.disks.geometry import PAPER_GEOMETRY
from repro.disks.request import BlockFetchRequest, FetchKind
from repro.sim import Simulator


class FixedRotation:
    """An rng stub whose uniform() always returns ``value``."""

    def __init__(self, value: float) -> None:
        self.value = value

    def uniform(self, low: float, high: float) -> float:
        assert low <= self.value <= high
        return self.value


PARAMS = DiskParameters(
    seek_ms_per_cylinder=1.0,
    avg_rotational_latency_ms=8.33,
    transfer_ms_per_block=2.0,
)
ROT = 4.0


def make_drive(sim, stream_across_requests=False, on_busy_change=None):
    return DiskDrive(
        sim,
        drive_id=0,
        geometry=PAPER_GEOMETRY,
        parameters=PARAMS,
        rng=FixedRotation(ROT),
        on_busy_change=on_busy_change,
        stream_across_requests=stream_across_requests,
        # Address = run * 1000 + block index (runs of 1000 blocks).
        address_of=lambda req: req.run * 1000 + req.first_block,
    )


def submit(sim, drive, run, first_block, count, kind=FetchKind.DEMAND):
    request = BlockFetchRequest(sim, run=run, first_block=first_block,
                                count=count, kind=kind)
    drive.submit(request)
    return request


def test_single_block_from_cylinder_zero():
    sim = Simulator()
    drive = make_drive(sim)
    request = submit(sim, drive, run=0, first_block=0, count=1)
    sim.run()
    # Head starts at cylinder 0, target cylinder 0: no seek, rotation
    # ROT, one transfer.
    assert request.finish_time == pytest.approx(ROT + 2.0)


def test_multi_block_request_streams_at_transfer_rate():
    sim = Simulator()
    drive = make_drive(sim)
    request = submit(sim, drive, run=0, first_block=0, count=5)
    sim.run()
    assert request.finish_time == pytest.approx(ROT + 5 * 2.0)
    arrivals = [0.0] * 5
    for i, event in enumerate(request.block_events):
        assert event.fired
    # Blocks arrive T apart, first after positioning + T.
    # (Capture times via a fresh run with callbacks.)


def test_block_arrival_times_are_spaced_by_transfer_time():
    sim = Simulator()
    drive = make_drive(sim)
    request = BlockFetchRequest(sim, run=0, first_block=0, count=3,
                                kind=FetchKind.DEMAND)
    times = []
    for event in request.block_events:
        event.add_callback(lambda _e: times.append(sim.now))
    drive.submit(request)
    sim.run()
    assert times == pytest.approx([ROT + 2.0, ROT + 4.0, ROT + 6.0])


def test_seek_charged_per_cylinder():
    sim = Simulator()
    drive = make_drive(sim)
    # Block address 640 is cylinder 10: 10 cylinders from the initial head.
    request = submit(sim, drive, run=0, first_block=640, count=1)
    sim.run()
    assert request.finish_time == pytest.approx(10 * 1.0 + ROT + 2.0)
    assert drive.stats.seek_cylinders == 10
    assert drive.head_cylinder == 10


def test_head_position_updates_to_last_transferred_block():
    sim = Simulator()
    drive = make_drive(sim)
    # 100 blocks starting at 0 end at block 99 = cylinder 1.
    submit(sim, drive, run=0, first_block=0, count=100)
    sim.run()
    assert drive.head_cylinder == 1


def test_requests_service_fifo():
    sim = Simulator()
    drive = make_drive(sim)
    first = submit(sim, drive, run=0, first_block=0, count=1)
    second = submit(sim, drive, run=1, first_block=0, count=1)
    sim.run()
    assert first.finish_time < second.finish_time


def test_queue_wait_accumulates():
    sim = Simulator()
    drive = make_drive(sim)
    submit(sim, drive, run=0, first_block=0, count=1)
    submit(sim, drive, run=0, first_block=1, count=1)
    sim.run()
    # Second request waited exactly the first's service time (ROT + T).
    assert drive.stats.queue_wait_ms == pytest.approx(ROT + 2.0)


def test_new_request_always_pays_rotation_by_default():
    """The paper's model: every fetch pays seek + rotation, even when it
    continues exactly where the previous one ended."""
    sim = Simulator()
    drive = make_drive(sim, stream_across_requests=False)
    submit(sim, drive, run=0, first_block=0, count=2)
    second = submit(sim, drive, run=0, first_block=2, count=2)
    sim.run()
    assert second.finish_time == pytest.approx((ROT + 4.0) + (ROT + 4.0))
    assert drive.stats.sequential_requests == 0


def test_streaming_across_requests_skips_positioning():
    sim = Simulator()
    drive = make_drive(sim, stream_across_requests=True)
    submit(sim, drive, run=0, first_block=0, count=2)
    second = submit(sim, drive, run=0, first_block=2, count=2)
    sim.run()
    assert second.finish_time == pytest.approx((ROT + 4.0) + 4.0)
    assert drive.stats.sequential_requests == 1


def test_streaming_not_applied_when_address_jumps():
    sim = Simulator()
    drive = make_drive(sim, stream_across_requests=True)
    submit(sim, drive, run=0, first_block=0, count=2)
    second = submit(sim, drive, run=0, first_block=500, count=1)
    sim.run()
    assert drive.stats.sequential_requests == 0
    # Cylinder of block 500 is 7: seek 7 cylinders.
    assert second.finish_time == pytest.approx((ROT + 4.0) + (7 + ROT + 2.0))


def test_stats_decompose_service_time():
    sim = Simulator()
    drive = make_drive(sim)
    submit(sim, drive, run=0, first_block=640, count=2)
    sim.run()
    stats = drive.stats
    assert stats.seek_ms == pytest.approx(10.0)
    assert stats.rotation_ms == pytest.approx(ROT)
    assert stats.transfer_ms == pytest.approx(4.0)
    assert stats.busy_ms == pytest.approx(stats.service_ms)
    assert stats.requests == 1
    assert stats.blocks == 2


def test_demand_and_prefetch_counted_separately():
    sim = Simulator()
    drive = make_drive(sim)
    submit(sim, drive, run=0, first_block=0, count=1, kind=FetchKind.DEMAND)
    submit(sim, drive, run=1, first_block=0, count=1, kind=FetchKind.PREFETCH)
    sim.run()
    assert drive.stats.demand_requests == 1
    assert drive.stats.prefetch_requests == 1


def test_busy_callback_fires_on_transitions():
    sim = Simulator()
    transitions = []
    drive = make_drive(
        sim, on_busy_change=lambda disk, busy: transitions.append((sim.now, busy))
    )
    submit(sim, drive, run=0, first_block=0, count=1)
    sim.run()
    assert transitions[0][1] is True
    assert transitions[-1][1] is False
    assert transitions[-1][0] == pytest.approx(ROT + 2.0)


def test_busy_callback_stays_busy_while_queue_nonempty():
    sim = Simulator()
    transitions = []
    drive = make_drive(
        sim, on_busy_change=lambda disk, busy: transitions.append((sim.now, busy))
    )
    submit(sim, drive, run=0, first_block=0, count=1)
    submit(sim, drive, run=0, first_block=1, count=1)
    sim.run()
    # One busy transition at start, one idle at the very end.
    assert [busy for _t, busy in transitions] == [True, False]


def test_max_queue_length_tracked():
    sim = Simulator()
    drive = make_drive(sim)
    for i in range(4):
        submit(sim, drive, run=0, first_block=i, count=1)
    sim.run()
    assert drive.stats.max_queue_length >= 3
