"""Tests for BlockFetchRequest."""

import pytest

from repro.disks.request import BlockFetchRequest, FetchKind
from repro.sim import Simulator


def test_request_creates_one_event_per_block():
    sim = Simulator()
    request = BlockFetchRequest(sim, run=3, first_block=10, count=4,
                                kind=FetchKind.PREFETCH)
    assert len(request.block_events) == 4
    assert request.demand_event is request.block_events[0]


def test_last_block():
    sim = Simulator()
    request = BlockFetchRequest(sim, run=0, first_block=10, count=4,
                                kind=FetchKind.DEMAND)
    assert request.last_block == 13


def test_issue_time_recorded():
    sim = Simulator()
    times = []

    def body():
        yield sim.timeout(5.0)
        request = BlockFetchRequest(sim, run=0, first_block=0, count=1,
                                    kind=FetchKind.DEMAND)
        times.append(request.issue_time)

    sim.process(body())
    sim.run()
    assert times == [5.0]


def test_invalid_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        BlockFetchRequest(sim, run=0, first_block=0, count=0,
                          kind=FetchKind.DEMAND)
    with pytest.raises(ValueError):
        BlockFetchRequest(sim, run=0, first_block=-1, count=1,
                          kind=FetchKind.DEMAND)


def test_repr_mentions_range_and_kind():
    sim = Simulator()
    request = BlockFetchRequest(sim, run=2, first_block=5, count=3,
                                kind=FetchKind.PREFETCH)
    text = repr(request)
    assert "run=2" in text and "[5..7]" in text and "prefetch" in text
