"""End-to-end resilience behaviour: retries, outages, timeouts, degraded mode."""

import pytest

from repro import api
from repro.api import configure
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.faults.injector import DriveOfflineError, FaultExhaustedError
from repro.faults.plan import (
    FaultPlan,
    OutageFault,
    RetryPolicy,
    fail_slow_plan,
    transient_plan,
)


def _config(**overrides) -> SimulationConfig:
    base = dict(
        num_runs=8,
        num_disks=4,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=4,
        blocks_per_run=40,
        trials=2,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def test_transient_faults_are_retried_and_counted():
    result = MergeSimulation(
        _config(fault_plan=transient_plan(0.2, drives=(0,)))
    ).run()
    metrics = result.trials[0]
    faulty = metrics.drive_stats[0]
    assert faulty.faults > 0
    assert faulty.retries == faulty.faults  # every fault retried (no exhaustion)
    assert faulty.retry_backoff_ms > 0
    assert faulty.fault_ms > 0
    # The histogram counts successful requests by attempts needed (>1).
    assert sum(faulty.retry_histogram.values()) > 0
    assert all(int(k) > 1 for k in faulty.retry_histogram)
    # Healthy drives stay untouched.
    for stats in metrics.drive_stats[1:]:
        assert stats.faults == 0 and stats.retries == 0
    # Same merge work still completes.
    assert metrics.blocks_depleted == 8 * 40


def test_retry_exhaustion_raises():
    plan = transient_plan(1.0, drives=(0,), retry=RetryPolicy(max_attempts=3))
    with pytest.raises(FaultExhaustedError, match="3 attempt"):
        MergeSimulation(_config(fault_plan=plan, trials=1)).run()


def test_permanent_outage_raises_drive_offline():
    plan = FaultPlan(outages=(OutageFault(drive=0, start_ms=0.0),))
    with pytest.raises(DriveOfflineError):
        MergeSimulation(_config(fault_plan=plan, trials=1)).run()


def test_recovered_outage_completes_with_wait_accounted():
    plan = FaultPlan(outages=(OutageFault(drive=0, start_ms=10.0, end_ms=400.0),))
    metrics = MergeSimulation(_config(fault_plan=plan, trials=1)).run().trials[0]
    assert metrics.blocks_depleted == 8 * 40
    assert metrics.drive_stats[0].outage_wait_ms > 0
    assert metrics.fault_stall_ms > 0


def test_fail_slow_strictly_slower_for_both_strategies():
    for strategy in (PrefetchStrategy.INTRA_RUN, PrefetchStrategy.INTER_RUN):
        healthy = MergeSimulation(_config(strategy=strategy)).run()
        slowed = MergeSimulation(
            _config(strategy=strategy, fault_plan=fail_slow_plan(drive=0, factor=4.0))
        ).run()
        assert slowed.total_time_s.mean > healthy.total_time_s.mean


def test_stall_attribution_partitions_cpu_stall():
    metrics = MergeSimulation(
        _config(fault_plan=fail_slow_plan(drive=1, factor=5.0), trials=1)
    ).run().trials[0]
    assert metrics.fault_stall_ms > 0
    assert metrics.healthy_stall_ms + metrics.fault_stall_ms == pytest.approx(
        metrics.cpu_stall_ms
    )


def test_healthy_run_attributes_all_stall_as_healthy():
    metrics = MergeSimulation(_config(trials=1)).run().trials[0]
    assert metrics.fault_stall_ms == 0.0
    assert metrics.healthy_stall_ms == pytest.approx(metrics.cpu_stall_ms)


def test_demand_timeout_escalates_queued_requests():
    plan = fail_slow_plan(drive=0, factor=10.0, demand_timeout_ms=20.0)
    metrics = MergeSimulation(_config(fault_plan=plan, trials=1)).run().trials[0]
    assert metrics.demand_timeouts > 0
    assert sum(s.requeues for s in metrics.drive_stats) > 0
    assert metrics.blocks_depleted == 8 * 40


def test_degraded_drive_skipped_by_inter_run_planner():
    plan = fail_slow_plan(drive=1, factor=4.0)
    metrics = MergeSimulation(_config(fault_plan=plan, trials=1)).run().trials[0]
    assert metrics.degraded_skips > 0
    # The sick drive still serves demand reads for its own runs.
    assert metrics.drive_stats[1].requests > 0


def test_ambient_fault_plan_context():
    config = _config(trials=1)
    baseline = MergeSimulation(config).run()
    with configure(fault_plan=fail_slow_plan(drive=0, factor=6.0)):
        slowed = MergeSimulation(config).run()
        # Explicit plans win over the ambient override.
        pinned = MergeSimulation(
            _config(trials=1, fault_plan=FaultPlan())
        ).run()
    after = MergeSimulation(config).run()
    assert slowed.total_time_s.mean > baseline.total_time_s.mean
    assert pinned.to_dict() == baseline.to_dict()
    assert after.to_dict() == baseline.to_dict()
    assert api.current_fault_plan() is None  # context restored


def test_intra_run_unaffected_by_degraded_mode_bookkeeping():
    # Intra-run planning never consults other drives, so a slowdown on
    # a non-demand drive degrades time but records no skips.
    plan = fail_slow_plan(drive=0, factor=3.0)
    metrics = MergeSimulation(
        _config(strategy=PrefetchStrategy.INTRA_RUN, fault_plan=plan, trials=1)
    ).run().trials[0]
    assert metrics.degraded_skips == 0
