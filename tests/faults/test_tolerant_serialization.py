"""Schema tolerance: metrics written by other schema versions still load."""

import json

from repro.core.metrics import MergeMetrics
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.disks.drive import DriveStats


def _metrics() -> MergeMetrics:
    config = SimulationConfig(
        num_runs=3,
        num_disks=2,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=2,
        blocks_per_run=20,
        trials=1,
    )
    return MergeSimulation(config).run().trials[0]


def test_drive_stats_ignores_unknown_keys():
    stats = DriveStats(requests=4, blocks=9, seek_ms=1.5)
    data = stats.to_dict()
    data["invented_by_a_newer_version"] = [1, 2, 3]
    assert DriveStats.from_dict(data) == stats


def test_drive_stats_fills_missing_keys_with_defaults():
    # A cache written before the fault counters existed.
    data = DriveStats(requests=4).to_dict()
    for key in ("faults", "retries", "retry_backoff_ms", "fault_ms",
                "outage_wait_ms", "requeues", "retry_histogram"):
        del data[key]
    restored = DriveStats.from_dict(data)
    assert restored.requests == 4
    assert restored.faults == 0
    assert restored.retry_histogram == {}


def test_merge_metrics_round_trip_survives_unknown_keys():
    metrics = _metrics()
    data = json.loads(json.dumps(metrics.to_dict()))
    data["metric_from_the_future"] = 42.0
    for drive in data["drive_stats"]:
        drive["unknown_counter"] = 1
    assert MergeMetrics.from_dict(data) == metrics


def test_merge_metrics_fills_missing_fault_fields_with_defaults():
    metrics = _metrics()
    data = json.loads(json.dumps(metrics.to_dict()))
    for key in ("fault_stall_ms", "healthy_stall_ms", "demand_timeouts",
                "degraded_skips"):
        del data[key]
    restored = MergeMetrics.from_dict(data)
    assert restored.fault_stall_ms == 0.0
    assert restored.demand_timeouts == 0
    assert restored.total_time_ms == metrics.total_time_ms
