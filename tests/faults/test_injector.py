"""FaultInjector behaviour: windows, compounding, flap detection."""

import math
import random

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    OutageFault,
    SlowdownFault,
    TransientFault,
)


def _injector(plan: FaultPlan, num_disks: int = 3) -> FaultInjector:
    return FaultInjector(plan, num_disks=num_disks, rng=random.Random(7))


def test_slowdown_factors_compound():
    plan = FaultPlan(
        slowdowns=(
            SlowdownFault(drive=0, factor=2.0, start_ms=0.0, end_ms=100.0),
            SlowdownFault(drive=0, factor=3.0, start_ms=50.0, end_ms=150.0),
            SlowdownFault(drive=1, factor=5.0),
        )
    )
    injector = _injector(plan)
    assert injector.slowdown_factor(0, 10.0) == 2.0
    assert injector.slowdown_factor(0, 75.0) == 6.0  # overlap compounds
    assert injector.slowdown_factor(0, 120.0) == 3.0
    assert injector.slowdown_factor(0, 200.0) == 1.0
    assert injector.slowdown_factor(1, 10.0) == 5.0
    assert injector.slowdown_factor(2, 10.0) == 1.0


def test_outage_until():
    plan = FaultPlan(
        outages=(
            OutageFault(drive=0, start_ms=10.0, end_ms=30.0),
            OutageFault(drive=1, start_ms=5.0),
        )
    )
    injector = _injector(plan)
    assert injector.outage_until(0, 0.0) is None
    assert injector.outage_until(0, 15.0) == 30.0
    assert injector.outage_until(0, 30.0) is None
    assert injector.outage_until(1, 6.0) == math.inf
    assert injector.outage_until(2, 6.0) is None


def test_attempt_fails_draws_rng_only_in_active_windows():
    plan = FaultPlan(
        transients=(
            TransientFault(drive=0, probability=0.5, start_ms=10.0, end_ms=20.0),
        )
    )

    draws = []

    class Counting(random.Random):
        def random(self):
            value = super().random()
            draws.append(value)
            return value

    injector = FaultInjector(plan, num_disks=2, rng=Counting(3))
    injector.attempt_fails(0, 5.0)  # window inactive: no draw
    injector.attempt_fails(1, 15.0)  # other drive: no draw
    assert draws == []
    injector.attempt_fails(0, 15.0)
    assert len(draws) == 1


def test_attempt_fails_matches_probability():
    plan = FaultPlan(transients=(TransientFault(drive=0, probability=0.3),))
    injector = _injector(plan)
    failures = sum(injector.attempt_fails(0, 1.0) for _ in range(4000))
    assert 0.25 < failures / 4000 < 0.35


def test_flapping_window_slides():
    plan = FaultPlan(flap_threshold=3, flap_window_ms=100.0)
    injector = _injector(plan)
    for t in (0.0, 10.0):
        injector.record_fault(0, t)
    assert not injector.flapping(0, 10.0)
    injector.record_fault(0, 20.0)
    assert injector.flapping(0, 20.0)
    assert injector.drive_degraded(0, 20.0)
    # 110 ms later the window has drained.
    assert not injector.flapping(0, 130.0)
    assert not injector.drive_degraded(0, 130.0)


def test_degraded_reasons():
    plan = FaultPlan(
        slowdowns=(SlowdownFault(drive=0, factor=2.0, end_ms=50.0),),
        outages=(OutageFault(drive=1, start_ms=10.0, end_ms=20.0),),
    )
    injector = _injector(plan)
    assert injector.drive_degraded(0, 25.0)  # slowdown active
    assert not injector.drive_degraded(0, 60.0)
    assert injector.drive_degraded(1, 15.0)  # outage active
    assert not injector.drive_degraded(1, 25.0)
    assert not injector.drive_degraded(2, 15.0)


def test_plan_validated_against_disk_count():
    plan = FaultPlan(slowdowns=(SlowdownFault(drive=4, factor=2.0),))
    with pytest.raises(ValueError):
        FaultInjector(plan, num_disks=3, rng=random.Random(0))


def test_retry_and_timeout_exposed():
    plan = FaultPlan(demand_timeout_ms=42.0)
    injector = _injector(plan)
    assert injector.demand_timeout_ms == 42.0
    assert injector.retry is plan.retry
