"""Determinism pins for fault injection.

Two invariants make faulty runs sweep-cacheable:

1. **Zero-fault identity** -- a behaviourally empty :class:`FaultPlan`
   run through the injector is *byte-identical* to running with no
   injector at all (same metrics dict, same config description, same
   cache key).
2. **Seeded reproducibility** -- the same plan and seed produce
   identical metrics on every execution path: serial in-process,
   inline sweep engine, and a multi-process worker pool.
"""

import json

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.faults.plan import FaultPlan, fail_slow_plan, transient_plan
from repro.sweep import NullProgress, ResultStore, SweepEngine, SweepSpec
from repro.sweep.keys import cache_key

BASE = dict(
    num_runs=8,
    num_disks=4,
    strategy=PrefetchStrategy.INTER_RUN,
    prefetch_depth=4,
    blocks_per_run=40,
    trials=2,
)

FAULTY_PLAN = fail_slow_plan(
    drive=1, factor=3.0, transients=(), demand_timeout_ms=80.0
)


def _metrics_dicts(config: SimulationConfig) -> list[dict]:
    return [m.to_dict() for m in MergeSimulation(config).run().trials]


def test_zero_fault_plan_is_byte_identical_to_no_plan():
    plain = SimulationConfig(**BASE)
    empty = SimulationConfig(**BASE, fault_plan=FaultPlan())
    assert empty.describe() == plain.describe()
    assert json.dumps(_metrics_dicts(empty), sort_keys=True) == json.dumps(
        _metrics_dicts(plain), sort_keys=True
    )


def test_zero_fault_plan_shares_cache_keys_with_no_plan():
    plain = SimulationConfig(**BASE)
    empty = SimulationConfig(**BASE, fault_plan=FaultPlan())
    faulty = SimulationConfig(**BASE, fault_plan=FAULTY_PLAN)
    assert cache_key(empty, seed=1992) == cache_key(plain, seed=1992)
    assert cache_key(faulty, seed=1992) != cache_key(plain, seed=1992)


def test_faulty_runs_reproduce_across_executions():
    config = SimulationConfig(**BASE, fault_plan=FAULTY_PLAN)
    first = _metrics_dicts(config)
    second = _metrics_dicts(config)
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )


def _sweep_cells(tmp_path, workers: int, subdir: str):
    spec = SweepSpec(
        name=f"faults-{subdir}",
        base={**{k: v for k, v in BASE.items()
                 if k not in ("trials", "prefetch_depth")},
              "fault_plan": FAULTY_PLAN.to_dict()},
        grid={"prefetch_depth": [2, 4]},
        trials=BASE["trials"],
        base_seed=1992,
    )
    engine = SweepEngine(
        store=ResultStore(tmp_path / subdir),
        workers=workers,
        progress=NullProgress(),
    )
    return spec, engine.run_spec(spec)


def test_serial_and_pooled_sweeps_byte_identical(tmp_path):
    spec, serial = _sweep_cells(tmp_path, workers=1, subdir="serial")
    _, pooled = _sweep_cells(tmp_path, workers=2, subdir="pooled")
    serial_cells = [cell.to_dict() for cell in serial.cells]
    pooled_cells = [cell.to_dict() for cell in pooled.cells]
    assert json.dumps(serial_cells, sort_keys=True) == json.dumps(
        pooled_cells, sort_keys=True
    )
    # And both match the plain serial simulator, cell by cell.
    for cell_config, cell in zip(spec.cells(), serial.cells):
        direct = MergeSimulation(cell_config).run()
        assert [m.to_dict() for m in cell.trials] == [
            m.to_dict() for m in direct.trials
        ]


def test_transient_faults_reproduce_with_same_seed():
    config = SimulationConfig(
        **BASE, fault_plan=transient_plan(0.15, drives=(0, 2))
    )
    assert _metrics_dicts(config) == _metrics_dicts(config)
