"""FaultPlan construction, validation, and serialization."""

import json
import random

import pytest

from repro.faults.plan import (
    FaultPlan,
    OutageFault,
    RetryPolicy,
    SlowdownFault,
    TransientFault,
    fail_slow_plan,
    load_plan,
    transient_plan,
)


def _full_plan() -> FaultPlan:
    return FaultPlan(
        transients=(TransientFault(drive=0, probability=0.1, end_ms=500.0),),
        slowdowns=(SlowdownFault(drive=1, factor=3.0, start_ms=100.0),),
        outages=(OutageFault(drive=2, start_ms=50.0, end_ms=80.0),),
        retry=RetryPolicy(max_attempts=4, jitter=0.0),
        demand_timeout_ms=75.0,
        flap_threshold=2,
        flap_window_ms=1000.0,
    )


def test_round_trip_through_json():
    plan = _full_plan()
    restored = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
    assert restored == plan


def test_file_round_trip(tmp_path):
    plan = _full_plan()
    path = tmp_path / "plan.json"
    plan.to_json(path)
    assert load_plan(path) == plan


def test_from_dict_ignores_unknown_keys():
    data = _full_plan().to_dict()
    data["future_field"] = {"nested": True}
    data["retry"]["future_knob"] = 7
    data["transients"][0]["severity_class"] = "minor"
    restored = FaultPlan.from_dict(data)
    assert restored == _full_plan()


def test_empty_plan_is_empty():
    assert FaultPlan().is_empty()
    assert not fail_slow_plan().is_empty()
    assert not transient_plan(0.1).is_empty()
    # A demand timeout alone changes behaviour.
    assert not FaultPlan(demand_timeout_ms=10.0).is_empty()
    # Retry/flap knobs alone do not: nothing ever consults them.
    assert FaultPlan(retry=RetryPolicy(max_attempts=2)).is_empty()


def test_validate_rejects_out_of_range_drive():
    plan = fail_slow_plan(drive=5)
    plan.validate(num_disks=6)
    with pytest.raises(ValueError, match="drive 5"):
        plan.validate(num_disks=5)


def test_window_activity():
    fault = SlowdownFault(drive=0, factor=2.0, start_ms=10.0, end_ms=20.0)
    assert not fault.active(9.999)
    assert fault.active(10.0)
    assert fault.active(19.999)
    assert not fault.active(20.0)
    open_ended = OutageFault(drive=0, start_ms=5.0)
    assert open_ended.active(1e12)


@pytest.mark.parametrize(
    "bad",
    [
        dict(transients=({"drive": 0, "probability": 1.5},)),
        dict(slowdowns=({"drive": 0, "factor": 0.5},)),
        dict(outages=({"drive": -1},)),
        dict(transients=({"drive": 0, "probability": 0.1,
                          "start_ms": 10.0, "end_ms": 5.0},)),
        dict(flap_threshold=0),
        dict(flap_window_ms=0.0),
        dict(demand_timeout_ms=-1.0),
    ],
)
def test_invalid_plans_rejected(bad):
    with pytest.raises(ValueError):
        FaultPlan(**bad)


def test_retry_policy_backoff_caps_and_jitters():
    policy = RetryPolicy(
        max_attempts=5, base_delay_ms=10.0, max_delay_ms=35.0,
        multiplier=2.0, jitter=0.0,
    )
    rng = random.Random(1)
    assert policy.delay_ms(1, rng) == 10.0
    assert policy.delay_ms(2, rng) == 20.0
    assert policy.delay_ms(3, rng) == 35.0  # capped
    jittered = RetryPolicy(base_delay_ms=10.0, jitter=0.5, multiplier=1.0)
    delays = {jittered.delay_ms(1, rng) for _ in range(50)}
    assert len(delays) > 1
    assert all(5.0 <= d <= 10.0 for d in delays)


def test_jitter_zero_draws_no_randomness():
    policy = RetryPolicy(jitter=0.0)

    class Boom(random.Random):
        def random(self):  # pragma: no cover - failure branch
            raise AssertionError("rng consulted with jitter disabled")

    assert policy.delay_ms(1, Boom()) == policy.base_delay_ms


def test_dict_entries_coerced_and_hashable():
    plan = FaultPlan(
        transients=[{"drive": 0, "probability": 0.2}],
        retry={"max_attempts": 3},
    )
    assert plan.transients == (TransientFault(drive=0, probability=0.2),)
    assert plan.retry.max_attempts == 3
    hash(plan)  # fully frozen/hashable after coercion


def test_describe_short():
    assert FaultPlan().describe_short() == "T0/S0/O0"
    assert _full_plan().describe_short() == "T1/S1/O1"
