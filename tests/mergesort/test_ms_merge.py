"""Tests for blocked runs and the traced merge."""

import random

import pytest

from repro.mergesort.merge import BlockedRun, merge_runs
from repro.mergesort.records import make_records


def blocked(keys, rpb=4):
    return BlockedRun.from_records(sorted(make_records(keys)), rpb)


def test_blocked_run_block_count():
    run = blocked(range(10), rpb=4)
    assert run.num_blocks == 3
    assert len(run.block(0)) == 4
    assert len(run.block(2)) == 2


def test_blocked_run_rejects_unsorted():
    with pytest.raises(ValueError):
        BlockedRun.from_records(make_records([2, 1]))


def test_blocked_run_block_out_of_range():
    run = blocked(range(4), rpb=4)
    with pytest.raises(IndexError):
        run.block(1)


def test_merge_produces_sorted_output():
    rng = random.Random(0)
    runs = [blocked([rng.randrange(100) for _ in range(20)]) for _ in range(5)]
    result = merge_runs(runs)
    keys = [record.key for record in result.records]
    assert keys == sorted(keys)
    assert len(result.records) == 100


def test_depletion_trace_length_equals_total_blocks():
    runs = [blocked(range(0, 16), rpb=4), blocked(range(16, 32), rpb=4)]
    result = merge_runs(runs)
    assert result.total_blocks == 8
    assert len(result.depletion_trace) == 8


def test_depletions_per_run_match_block_counts():
    rng = random.Random(1)
    runs = [blocked([rng.randrange(1000) for _ in range(20)]) for _ in range(4)]
    result = merge_runs(runs)
    for index, run in enumerate(runs):
        assert result.depletions_of(index) == run.num_blocks


def test_disjoint_ranges_deplete_sequentially():
    """Run 0 holds all small keys: its blocks deplete first."""
    runs = [blocked(range(0, 16), rpb=4), blocked(range(100, 116), rpb=4)]
    result = merge_runs(runs)
    assert result.depletion_trace == [0, 0, 0, 0, 1, 1, 1, 1]


def test_interleaved_ranges_alternate_depletions():
    a = blocked(range(0, 32, 2), rpb=4)  # evens
    b = blocked(range(1, 33, 2), rpb=4)  # odds
    result = merge_runs([a, b])
    assert sorted(result.depletion_trace) == [0, 0, 0, 0, 1, 1, 1, 1]
    # Perfect interleave: no run depletes twice in a row until the tail.
    assert result.depletion_trace[:6] in ([0, 1, 0, 1, 0, 1], [1, 0, 1, 0, 1, 0])


def test_partial_final_block_counts_as_one_depletion():
    run = blocked(range(5), rpb=4)  # blocks of 4 + 1
    result = merge_runs([run])
    assert result.depletion_trace == [0, 0]


def test_empty_run_list_rejected():
    with pytest.raises(ValueError):
        merge_runs([])


def test_single_run_merge():
    run = blocked(range(8), rpb=4)
    result = merge_runs([run])
    assert [r.key for r in result.records] == list(range(8))
    assert result.depletion_trace == [0, 0]


def test_unequal_run_lengths():
    runs = [blocked(range(12), rpb=4), blocked(range(100, 104), rpb=4)]
    result = merge_runs(runs)
    assert result.blocks_per_run == [3, 1]
    assert result.total_blocks == 4
