"""Tests for the end-to-end external mergesort and trace-driven I/O."""

import random

import pytest

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.mergesort.external import ExternalMergesort, trace_driven_metrics
from repro.mergesort.records import is_sorted, make_records


def random_records(count, seed=0):
    rng = random.Random(seed)
    return make_records([rng.randrange(1_000_000) for _ in range(count)])


def test_sorts_random_input():
    records = random_records(500)
    stats = ExternalMergesort(memory_records=64).sort(records)
    assert is_sorted(stats.output)
    assert stats.records == 500
    assert stats.initial_runs == 8  # ceil(500/64)


def test_single_pass_when_few_runs():
    records = random_records(100)
    stats = ExternalMergesort(memory_records=50).sort(records)
    assert stats.merge_passes == 1
    assert stats.final_fan_in == 2


def test_multi_pass_respects_fan_in_limit():
    records = random_records(1000)
    sorter = ExternalMergesort(memory_records=50, max_fan_in=4)
    stats = sorter.sort(records)
    assert stats.initial_runs == 20
    assert stats.merge_passes > 1
    assert stats.final_fan_in <= 4
    assert is_sorted(stats.output)


def test_replacement_selection_pipeline():
    records = random_records(600)
    sorter = ExternalMergesort(memory_records=50, replacement_selection=True)
    stats = sorter.sort(records)
    assert is_sorted(stats.output)
    # Replacement selection forms fewer, longer runs than memory sort.
    assert stats.initial_runs < 600 / 50


def test_sorted_input_already_one_run_with_replacement_selection():
    records = make_records(range(300))
    sorter = ExternalMergesort(memory_records=50, replacement_selection=True)
    stats = sorter.sort(records)
    assert stats.initial_runs == 1


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        ExternalMergesort(memory_records=10).sort([])


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        ExternalMergesort(memory_records=0)
    with pytest.raises(ValueError):
        ExternalMergesort(memory_records=10, max_fan_in=1)
    with pytest.raises(ValueError):
        ExternalMergesort(memory_records=10, records_per_block=0)


def test_depletion_trace_available():
    records = random_records(512)
    stats = ExternalMergesort(memory_records=64, records_per_block=16).sort(records)
    trace = stats.final_depletion_trace
    assert len(trace) == 512 // 16
    assert all(0 <= run < stats.final_fan_in for run in trace)


def trace_config(k, blocks_per_run):
    return SimulationConfig(
        num_runs=k,
        num_disks=2,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=2,
        blocks_per_run=blocks_per_run,
        trials=1,
    )


def test_trace_driven_metrics_runs_real_trace():
    k, blocks_per_run, rpb = 4, 8, 8
    records = random_records(k * blocks_per_run * rpb, seed=5)
    sorter = ExternalMergesort(
        memory_records=blocks_per_run * rpb, records_per_block=rpb
    )
    stats = sorter.sort(records)
    metrics = trace_driven_metrics(stats, trace_config(k, blocks_per_run))
    assert metrics.blocks_depleted == k * blocks_per_run
    assert metrics.total_time_ms > 0


def test_trace_driven_rejects_shape_mismatch():
    records = random_records(4 * 8 * 8, seed=5)
    sorter = ExternalMergesort(memory_records=64, records_per_block=8)
    stats = sorter.sort(records)
    with pytest.raises(ValueError):
        trace_driven_metrics(stats, trace_config(k=5, blocks_per_run=8))
    with pytest.raises(ValueError):
        trace_driven_metrics(stats, trace_config(k=4, blocks_per_run=9))


def test_verify_flag_detects_nothing_on_good_sort():
    records = random_records(200)
    ExternalMergesort(memory_records=64).sort(records, verify=True)
