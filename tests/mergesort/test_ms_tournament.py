"""Tests for the loser tree."""

import random

import pytest

from repro.mergesort.records import make_records
from repro.mergesort.tournament import LoserTree, heap_merge


def test_merges_two_sorted_lists():
    tree = LoserTree([[1, 3, 5], [2, 4, 6]])
    assert list(tree) == [1, 2, 3, 4, 5, 6]


def test_single_source():
    assert list(LoserTree([[1, 2, 3]])) == [1, 2, 3]


def test_empty_sources_mixed_with_data():
    assert list(LoserTree([[], [5], [], [1, 9]])) == [1, 5, 9]


def test_all_sources_empty():
    assert list(LoserTree([[], [], []])) == []


def test_no_sources_rejected():
    with pytest.raises(ValueError):
        LoserTree([])


def test_non_power_of_two_fan_in():
    sources = [[i, i + 10, i + 20] for i in range(7)]
    merged = list(LoserTree(sources))
    assert merged == sorted(merged)
    assert len(merged) == 21


def test_duplicates_preserved():
    tree = LoserTree([[1, 1, 2], [1, 2, 2]])
    assert list(tree) == [1, 1, 1, 2, 2, 2]


def test_matches_heapq_reference_on_random_inputs():
    rng = random.Random(99)
    for _ in range(25):
        k = rng.randint(1, 12)
        sources = [
            sorted(rng.randrange(100) for _ in range(rng.randint(0, 30)))
            for _ in range(k)
        ]
        expected = list(heap_merge([list(s) for s in sources]))
        assert list(LoserTree(sources)) == expected


def test_on_pop_reports_source_indices():
    pops = []
    tree = LoserTree([[1, 4], [2, 3]], on_pop=pops.append)
    list(tree)
    assert pops == [0, 1, 1, 0]


def test_merges_records():
    a = make_records([1, 5, 9])
    b = make_records([2, 4, 8])
    merged = list(LoserTree([sorted(a), sorted(b)]))
    assert [r.key for r in merged] == [1, 2, 4, 5, 8, 9]


def test_fan_in_property():
    assert LoserTree([[1], [2], [3]]).fan_in == 3


def test_large_fan_in_sorted_output():
    rng = random.Random(5)
    sources = [
        sorted(rng.randrange(10_000) for _ in range(50)) for _ in range(64)
    ]
    merged = list(LoserTree(sources))
    assert merged == sorted(merged)
    assert len(merged) == 64 * 50


def test_works_with_iterators_not_just_lists():
    tree = LoserTree([iter([1, 3]), iter([2, 4])])
    assert list(tree) == [1, 2, 3, 4]
