"""Tests for run formation."""

import random

import pytest

from repro.mergesort.records import make_records
from repro.mergesort.runs import (
    check_runs,
    form_runs_memory_sort,
    form_runs_replacement_selection,
)


def test_memory_sort_run_sizes():
    records = make_records(range(10, 0, -1))
    runs = form_runs_memory_sort(records, memory_records=4)
    assert [len(run) for run in runs] == [4, 4, 2]
    check_runs(runs)


def test_memory_sort_preserves_all_records():
    records = make_records([5, 2, 9, 1, 7, 3])
    runs = form_runs_memory_sort(records, memory_records=2)
    flattened = [record for run in runs for record in run]
    assert sorted(flattened) == sorted(records)


def test_memory_sort_each_run_sorted():
    rng = random.Random(3)
    records = make_records([rng.randrange(100) for _ in range(57)])
    runs = form_runs_memory_sort(records, memory_records=10)
    check_runs(runs)


def test_replacement_selection_runs_sorted_and_complete():
    rng = random.Random(11)
    records = make_records([rng.randrange(1000) for _ in range(500)])
    runs = form_runs_replacement_selection(records, memory_records=50)
    check_runs(runs)
    flattened = [record for run in runs for record in run]
    assert sorted(flattened) == sorted(records)


def test_replacement_selection_doubles_run_length_on_random_input():
    """Knuth's classic result: expected run length ~ 2x memory."""
    rng = random.Random(42)
    memory = 100
    records = make_records([rng.randrange(1_000_000) for _ in range(20_000)])
    runs = form_runs_replacement_selection(records, memory_records=memory)
    mean_length = sum(len(run) for run in runs) / len(runs)
    assert 1.6 * memory < mean_length < 2.4 * memory


def test_replacement_selection_sorted_input_gives_one_run():
    records = make_records(range(100))
    runs = form_runs_replacement_selection(records, memory_records=10)
    assert len(runs) == 1
    assert len(runs[0]) == 100


def test_replacement_selection_reverse_input_gives_memory_sized_runs():
    records = make_records(range(100, 0, -1))
    runs = form_runs_replacement_selection(records, memory_records=10)
    assert len(runs) == 10
    assert all(len(run) == 10 for run in runs)


def test_memory_sort_beats_nothing_on_fewer_records_than_memory():
    records = make_records([3, 1, 2])
    runs = form_runs_memory_sort(records, memory_records=100)
    assert len(runs) == 1
    assert [r.key for r in runs[0]] == [1, 2, 3]


def test_invalid_memory_rejected():
    records = make_records([1])
    with pytest.raises(ValueError):
        form_runs_memory_sort(records, memory_records=0)
    with pytest.raises(ValueError):
        form_runs_replacement_selection(records, memory_records=0)


def test_check_runs_raises_on_unsorted():
    bad = [make_records([2, 1])]
    with pytest.raises(AssertionError):
        check_runs(bad)
