"""Tests for records and sortedness verification."""

import pytest

from repro.mergesort.records import (
    RECORD_BYTES,
    RECORDS_PER_BLOCK,
    Record,
    is_sorted,
    make_records,
    verify_sorted_permutation,
)


def test_paper_packing():
    assert RECORD_BYTES * RECORDS_PER_BLOCK == 4096


def test_records_order_by_key_then_tag():
    assert Record(1, 0) < Record(2, 0)
    assert Record(1, 0) < Record(1, 1)
    assert Record(2, 0) > Record(1, 99)


def test_make_records_assigns_sequential_tags():
    records = make_records([5, 3, 5])
    assert [r.tag for r in records] == [0, 1, 2]
    assert [r.key for r in records] == [5, 3, 5]


def test_is_sorted():
    assert is_sorted(make_records([1, 2, 3]))
    assert is_sorted([])
    assert is_sorted(make_records([7]))
    assert not is_sorted(make_records([2, 1]))


def test_is_sorted_with_duplicates():
    assert is_sorted(make_records([1, 1, 2]))  # tags break ties ascending


def test_verify_sorted_permutation_accepts_valid_sort():
    original = make_records([3, 1, 2])
    verify_sorted_permutation(original, sorted(original))


def test_verify_rejects_length_change():
    original = make_records([1, 2])
    with pytest.raises(AssertionError):
        verify_sorted_permutation(original, original[:1])


def test_verify_rejects_unsorted_output():
    original = make_records([1, 2])
    with pytest.raises(AssertionError):
        verify_sorted_permutation(original, list(reversed(sorted(original))))


def test_verify_rejects_non_permutation():
    original = make_records([1, 2])
    forged = [Record(1, 0), Record(3, 5)]
    with pytest.raises(AssertionError):
        verify_sorted_permutation(original, forged)
