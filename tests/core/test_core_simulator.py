"""Tests for the MergeSimulation public API and metric aggregation."""

import pytest

from repro.core.metrics import Aggregate
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation, simulate_merge


def small_config(**kwargs):
    defaults = dict(num_runs=4, num_disks=2, blocks_per_run=30, trials=3)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def test_run_aggregates_over_trials():
    result = MergeSimulation(small_config()).run()
    assert len(result.trials) == 3
    assert result.total_time_s.count == 3
    assert result.total_time_s.mean > 0


def test_trials_use_distinct_seeds():
    result = MergeSimulation(small_config()).run()
    seeds = {trial.seed for trial in result.trials}
    assert len(seeds) == 3


def test_rerun_is_reproducible():
    first = MergeSimulation(small_config()).run()
    second = MergeSimulation(small_config()).run()
    assert first.total_time_s.mean == second.total_time_s.mean


def test_base_seed_changes_results():
    first = MergeSimulation(small_config(base_seed=1)).run()
    second = MergeSimulation(small_config(base_seed=2)).run()
    assert first.total_time_s.mean != second.total_time_s.mean


def test_simulate_merge_convenience():
    result = simulate_merge(
        4, 2, strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=3,
        blocks_per_run=30, trials=2,
    )
    assert result.total_time_s.count == 2


def test_aggregate_statistics():
    agg = Aggregate.of([1.0, 2.0, 3.0])
    assert agg.mean == pytest.approx(2.0)
    assert agg.std == pytest.approx(1.0)
    assert agg.count == 3


def test_aggregate_single_value_has_zero_std():
    agg = Aggregate.of([5.0])
    assert agg.std == 0.0


def test_aggregate_empty_is_nan():
    import math

    agg = Aggregate.of([])
    assert math.isnan(agg.mean)


def test_aggregate_format():
    agg = Aggregate.of([1.0, 2.0])
    assert f"{agg:.2f}" == "1.50"
    assert f"{agg}" == "1.50"
    assert f"{agg:.0f}" == "2"


def test_run_trial_accepts_external_depletion_source():
    config = small_config(trials=1)
    sequence = iter([0, 1, 2, 3] * 30)
    metrics = MergeSimulation(config).run_trial(depletion_source=sequence)
    assert metrics.blocks_depleted == 120


def test_repr_mentions_configuration():
    result = MergeSimulation(small_config()).run()
    assert "k=4" in repr(result)
