"""Tests for the confidence-interval support on aggregates."""

import math

import pytest

from repro.core.metrics import Aggregate, _t_critical


def test_interval_contains_mean():
    agg = Aggregate.of([10.0, 11.0, 9.0, 10.5, 9.5])
    low, high = agg.confidence_interval()
    assert low < agg.mean < high


def test_interval_width_uses_t_distribution():
    agg = Aggregate.of([10.0, 12.0])
    low, high = agg.confidence_interval()
    # n=2: t(1)=12.706, std=sqrt(2), half-width = 12.706*sqrt(2)/sqrt(2).
    assert high - low == pytest.approx(2 * 12.706, rel=1e-6)


def test_more_trials_tighten_the_interval():
    narrow = Aggregate.of([10.0, 10.5] * 10)
    wide = Aggregate.of([10.0, 10.5])
    assert (narrow.confidence_interval()[1] - narrow.confidence_interval()[0]) < (
        wide.confidence_interval()[1] - wide.confidence_interval()[0]
    )


def test_single_value_degenerates_to_point():
    agg = Aggregate.of([42.0])
    assert agg.confidence_interval() == (42.0, 42.0)


def test_empty_is_nan():
    low, high = Aggregate.of([]).confidence_interval()
    assert math.isnan(low) and math.isnan(high)


def test_zero_variance_gives_point_interval():
    agg = Aggregate.of([5.0, 5.0, 5.0])
    assert agg.confidence_interval() == (5.0, 5.0)


def test_t_critical_table():
    assert _t_critical(1) == pytest.approx(12.706)
    assert _t_critical(4) == pytest.approx(2.776)
    # Between table entries: use the nearest smaller (conservative).
    assert _t_critical(11) == pytest.approx(2.228)
    # Large samples: normal value.
    assert _t_critical(100) == pytest.approx(1.960)
    assert math.isnan(_t_critical(0))


def test_simulation_interval_covers_rerun(tmp_path):
    """The 95% CI from 5 trials should cover a fresh trial's result for
    a low-variance configuration."""
    from repro.core.parameters import PrefetchStrategy, SimulationConfig
    from repro.core.simulator import MergeSimulation

    config = SimulationConfig(
        num_runs=8, num_disks=2, strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=4, blocks_per_run=60, trials=5,
    )
    result = MergeSimulation(config).run()
    low, high = result.total_time_s.confidence_interval()
    fresh = MergeSimulation(config).run_trial(trial=99).total_time_s
    margin = (high - low) * 1.5 + 0.05
    assert low - margin <= fresh <= high + margin
