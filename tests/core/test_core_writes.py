"""Tests for the write-traffic extension."""

import pytest

from repro.core.merge_sim import MergeTrial
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.writes import WriteSubsystem
from repro.disks.geometry import PAPER_GEOMETRY
from repro.core.parameters import DiskParameters
from repro.sim import RandomStreams, Simulator


def config(**kwargs):
    defaults = dict(
        num_runs=5,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=5,
        blocks_per_run=50,
        trials=1,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def run(cfg, seed=3):
    return MergeTrial(cfg, seed=seed).run()


def test_zero_write_disks_is_the_paper_model():
    metrics = run(config(write_disks=0))
    assert metrics.blocks_written == 0
    assert metrics.write_stall_ms == 0.0


def test_every_block_written_once():
    metrics = run(config(write_disks=2))
    assert metrics.blocks_written == 5 * 50


def test_single_write_disk_makes_merge_write_bound():
    cfg = config(write_disks=1)
    metrics = run(cfg)
    write_bound_ms = cfg.total_blocks * cfg.disk.transfer_ms_per_block
    assert metrics.total_time_ms >= write_bound_ms
    assert metrics.write_stall_ms > 0


def test_more_write_disks_reduce_stalls():
    few = run(config(write_disks=1))
    many = run(config(write_disks=5))
    assert many.write_stall_ms < few.write_stall_ms
    assert many.total_time_ms < few.total_time_ms


def test_large_write_array_approaches_ignored_model():
    ignored = run(config(write_disks=0))
    wide = run(config(write_disks=10))
    assert wide.total_time_ms <= ignored.total_time_ms * 1.35
    assert wide.total_time_ms >= ignored.total_time_ms  # never faster


def test_total_time_includes_final_drain():
    """The merge cannot finish before its last output block is durable:
    total time must be at least any write disk's busy time."""
    metrics = run(config(write_disks=2))
    assert metrics.total_time_ms >= 50 * 5 / 2 * 2.05 - 1e-6


def test_invalid_write_config_rejected():
    with pytest.raises(ValueError):
        config(write_disks=-1)
    with pytest.raises(ValueError):
        config(write_disks=1, write_buffer_blocks=0)


def test_subsystem_round_robin_and_sequential_addresses():
    sim = Simulator()
    subsystem = WriteSubsystem(
        sim,
        num_disks=2,
        parameters=DiskParameters(),
        geometry=PAPER_GEOMETRY,
        streams=RandomStreams(1),
        buffer_blocks=4,
    )
    for _ in range(6):
        subsystem.write_block()
    sim.run()
    assert subsystem.stats.blocks_written == 6
    # Each disk received 3 sequential blocks.
    assert subsystem._next_address == [3, 3]
    for drive in subsystem.drives:
        # Sequential streaming: everything after the first request on
        # each disk skipped positioning.
        assert drive.stats.sequential_requests == 2


def test_subsystem_backpressure_event():
    sim = Simulator()
    subsystem = WriteSubsystem(
        sim,
        num_disks=1,
        parameters=DiskParameters(),
        geometry=PAPER_GEOMETRY,
        streams=RandomStreams(1),
        buffer_blocks=1,
    )
    assert subsystem.write_block() is None  # buffer has room
    backpressure = subsystem.write_block()  # now over the buffer
    assert backpressure is not None
    assert subsystem.stats.stalls == 1
    sim.run()
    assert backpressure.fired


def test_drain_event_none_when_idle():
    sim = Simulator()
    subsystem = WriteSubsystem(
        sim,
        num_disks=1,
        parameters=DiskParameters(),
        geometry=PAPER_GEOMETRY,
        streams=RandomStreams(1),
    )
    assert subsystem.drain_event() is None
    subsystem.write_block()
    assert subsystem.drain_event() is not None


def test_invalid_subsystem_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        WriteSubsystem(sim, num_disks=0, parameters=DiskParameters(),
                       geometry=PAPER_GEOMETRY, streams=RandomStreams(1))
    with pytest.raises(ValueError):
        WriteSubsystem(sim, num_disks=1, parameters=DiskParameters(),
                       geometry=PAPER_GEOMETRY, streams=RandomStreams(1),
                       buffer_blocks=0)
