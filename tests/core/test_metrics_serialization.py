"""JSON round-trips for MergeMetrics / AggregateMetrics / DriveStats."""

import json

from repro.core.metrics import AggregateMetrics, MergeMetrics
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.disks.drive import DriveStats


def _simulate(**overrides):
    config = SimulationConfig(
        num_runs=3,
        num_disks=2,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=2,
        blocks_per_run=20,
        trials=2,
        **overrides,
    )
    return MergeSimulation(config).run()


def test_merge_metrics_round_trip_through_json():
    metrics = _simulate().trials[0]
    payload = json.dumps(metrics.to_dict())
    restored = MergeMetrics.from_dict(json.loads(payload))
    assert restored == metrics
    # Derived properties survive as well.
    assert restored.success_ratio == metrics.success_ratio
    assert restored.total_seek_ms == metrics.total_seek_ms


def test_merge_metrics_round_trip_with_timelines_and_traces():
    metrics = _simulate(record_timelines=True, record_requests=True).trials[0]
    assert metrics.concurrency_timeline and metrics.request_traces
    restored = MergeMetrics.from_dict(json.loads(json.dumps(metrics.to_dict())))
    assert restored == metrics
    # Timelines come back as the original tuples, traces as RequestTrace.
    assert restored.concurrency_timeline[0] == metrics.concurrency_timeline[0]
    assert restored.request_traces[0].kind is metrics.request_traces[0].kind


def test_aggregate_metrics_round_trip_preserves_statistics():
    aggregate = _simulate()
    restored = AggregateMetrics.from_dict(
        json.loads(json.dumps(aggregate.to_dict()))
    )
    assert restored.config_description == aggregate.config_description
    assert len(restored.trials) == len(aggregate.trials)
    assert restored.total_time_s == aggregate.total_time_s
    assert restored.success_ratio == aggregate.success_ratio
    # Byte-identical re-serialization: the contract the sweep cache
    # relies on for "parallel == serial" comparisons.
    assert json.dumps(restored.to_dict()) == json.dumps(aggregate.to_dict())


def test_drive_stats_round_trip():
    stats = DriveStats(requests=3, blocks=9, seek_ms=1.5,
                       samples={"seek": 0.5})
    assert DriveStats.from_dict(json.loads(json.dumps(stats.to_dict()))) == stats
