"""Tests for request-level tracing."""

import pytest

from repro.core.merge_sim import MergeTrial
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.tracing import (
    RequestTrace,
    render_gantt,
    request_statistics,
)
from repro.disks.request import FetchKind


def run_traced(**kwargs):
    defaults = dict(
        num_runs=4, num_disks=2, strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=3, cache_capacity=40, blocks_per_run=30,
        trials=1, record_requests=True,
    )
    defaults.update(kwargs)
    return MergeTrial(SimulationConfig(**defaults), seed=3).run()


def test_traces_absent_by_default():
    config = SimulationConfig(num_runs=2, num_disks=1, blocks_per_run=10,
                              trials=1)
    assert MergeTrial(config, seed=1).run().request_traces is None


def test_every_request_traced():
    metrics = run_traced()
    traces = metrics.request_traces
    assert traces is not None
    assert len(traces) == metrics.fetch_requests
    assert sum(t.blocks for t in traces) == metrics.blocks_fetched


def test_trace_fields_consistent():
    metrics = run_traced()
    for trace in metrics.request_traces:
        assert trace.issue_ms <= trace.start_ms <= trace.finish_ms
        assert trace.queue_wait_ms >= 0
        assert trace.service_ms > 0
        assert 0 <= trace.disk < 2
        assert 0 <= trace.run < 4
        assert trace.kind in (FetchKind.DEMAND, FetchKind.PREFETCH)


def test_trace_service_includes_transfer_time():
    metrics = run_traced()
    for trace in metrics.request_traces:
        assert trace.service_ms >= trace.blocks * 2.05 - 1e-9


def test_request_statistics():
    metrics = run_traced()
    overall = request_statistics(metrics.request_traces)
    demand = request_statistics(metrics.request_traces, FetchKind.DEMAND)
    prefetch = request_statistics(metrics.request_traces, FetchKind.PREFETCH)
    assert overall.count == demand.count + prefetch.count
    assert overall.total_blocks == demand.total_blocks + prefetch.total_blocks
    assert demand.count > 0
    assert overall.mean_service_ms > 0
    assert overall.max_queue_wait_ms >= overall.mean_queue_wait_ms


def test_request_statistics_empty():
    stats = request_statistics([])
    assert stats.count == 0
    assert stats.total_blocks == 0


def test_from_request_rejects_incomplete():
    from repro.disks.request import BlockFetchRequest
    from repro.sim import Simulator

    request = BlockFetchRequest(Simulator(), run=0, first_block=0, count=1,
                                kind=FetchKind.DEMAND)
    with pytest.raises(ValueError):
        RequestTrace.from_request(request, disk=0)


def test_gantt_renders_rows_per_disk():
    metrics = run_traced()
    chart = render_gantt(metrics.request_traces, num_disks=2, width=40)
    lines = chart.splitlines()
    assert lines[0].startswith("disk 0 |")
    assert lines[1].startswith("disk 1 |")
    assert len(lines[0]) == len("disk 0 ||") + 40
    assert "D" in chart  # demand fetches visible
    assert "demand fetch" in chart


def test_gantt_demand_wins_overlap():
    traces = [
        RequestTrace(run=0, disk=0, kind=FetchKind.PREFETCH, blocks=1,
                     issue_ms=0, start_ms=0, finish_ms=100),
        RequestTrace(run=1, disk=0, kind=FetchKind.DEMAND, blocks=1,
                     issue_ms=0, start_ms=0, finish_ms=100),
    ]
    chart = render_gantt(traces, num_disks=1, width=10)
    row = chart.splitlines()[0]
    assert "p" not in row
    assert row.count("D") == 10


def test_gantt_window_clipping():
    traces = [
        RequestTrace(run=0, disk=0, kind=FetchKind.PREFETCH, blocks=1,
                     issue_ms=0, start_ms=0, finish_ms=10),
        RequestTrace(run=0, disk=0, kind=FetchKind.PREFETCH, blocks=1,
                     issue_ms=90, start_ms=90, finish_ms=100),
    ]
    chart = render_gantt(traces, num_disks=1, width=10,
                         start_ms=50, end_ms=100)
    row = chart.splitlines()[0]
    # Only the second request falls in the window.
    assert row.index("p") > len("disk 0 |") + 5


def test_gantt_invalid_arguments():
    trace = RequestTrace(run=0, disk=0, kind=FetchKind.DEMAND, blocks=1,
                         issue_ms=0, start_ms=0, finish_ms=1)
    with pytest.raises(ValueError):
        render_gantt([], num_disks=1)
    with pytest.raises(ValueError):
        render_gantt([trace], num_disks=0)
    with pytest.raises(ValueError):
        render_gantt([trace], num_disks=1, start_ms=5, end_ms=5)
