"""Tests for configuration validation and derived quantities."""

import pytest

from repro.core.parameters import (
    PAPER_DISK,
    DiskParameters,
    PrefetchStrategy,
    SimulationConfig,
)


def test_paper_disk_constants():
    assert PAPER_DISK.seek_ms_per_cylinder == pytest.approx(0.03)
    assert PAPER_DISK.avg_rotational_latency_ms == pytest.approx(8.33)
    assert PAPER_DISK.transfer_ms_per_block == pytest.approx(2.05)
    assert PAPER_DISK.rotation_period_ms == pytest.approx(16.66)


def test_invalid_disk_parameters():
    with pytest.raises(ValueError):
        DiskParameters(transfer_ms_per_block=0)
    with pytest.raises(ValueError):
        DiskParameters(seek_ms_per_cylinder=-0.1)
    with pytest.raises(ValueError):
        DiskParameters(avg_rotational_latency_ms=-1)


def test_run_cylinders_is_m():
    config = SimulationConfig(num_runs=25, num_disks=5)
    assert config.run_cylinders == pytest.approx(15.625)


def test_total_blocks():
    config = SimulationConfig(num_runs=25, num_disks=5, blocks_per_run=1000)
    assert config.total_blocks == 25_000


def test_effective_depth_forced_to_one_without_prefetching():
    config = SimulationConfig(
        num_runs=5, num_disks=1, strategy=PrefetchStrategy.NONE, prefetch_depth=10
    )
    assert config.effective_depth == 1
    assert config.resolved_cache_capacity == 5


def test_intra_run_cache_defaults_to_kn():
    config = SimulationConfig(
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=10,
    )
    assert config.resolved_cache_capacity == 250


def test_inter_run_default_cache_is_generous():
    config = SimulationConfig(
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
    )
    assert config.resolved_cache_capacity == 25 * 10 * (1 + 5 / 2)


def test_explicit_cache_respected():
    config = SimulationConfig(
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        cache_capacity=400,
    )
    assert config.resolved_cache_capacity == 400


def test_cache_below_initial_load_rejected():
    with pytest.raises(ValueError):
        SimulationConfig(
            num_runs=25,
            num_disks=5,
            strategy=PrefetchStrategy.INTRA_RUN,
            prefetch_depth=10,
            cache_capacity=249,
        )


def test_initial_blocks_capped_by_run_length():
    config = SimulationConfig(
        num_runs=4,
        num_disks=2,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=10,
        blocks_per_run=3,
    )
    assert config.initial_blocks_per_run == 3


@pytest.mark.parametrize(
    "kwargs",
    [
        {"num_runs": 0, "num_disks": 1},
        {"num_runs": 1, "num_disks": 0},
        {"num_runs": 1, "num_disks": 1, "prefetch_depth": 0},
        {"num_runs": 1, "num_disks": 1, "blocks_per_run": 0},
        {"num_runs": 1, "num_disks": 1, "cpu_ms_per_block": -1.0},
        {"num_runs": 1, "num_disks": 1, "trials": 0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        SimulationConfig(**kwargs)


def test_describe_mentions_key_parameters():
    config = SimulationConfig(
        num_runs=25,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=10,
        synchronized=True,
    )
    text = config.describe()
    assert "k=25" in text and "D=5" in text and "N=10" in text and "sync" in text
