"""Tests for block-cache accounting."""

import pytest

from repro.core.cache import BlockCache, CacheAccountingError
from repro.sim import Simulator


def make_cache(capacity=10, runs=2, blocks_per_run=100):
    sim = Simulator()
    return sim, BlockCache(sim, capacity=capacity, runs=runs,
                           blocks_per_run=blocks_per_run)


def test_initial_state_all_free():
    _sim, cache = make_cache(capacity=10)
    assert cache.free == 10
    assert cache.occupied_or_reserved == 0
    cache.check()


def test_reserve_claims_space_and_advances_fetch_pointer():
    _sim, cache = make_cache()
    cache.reserve(0, 3)
    assert cache.free == 7
    state = cache.runs[0]
    assert state.in_flight == 3
    assert state.next_fetch == 3
    cache.check()


def test_reserve_beyond_free_space_rejected():
    _sim, cache = make_cache(capacity=4)
    cache.reserve(0, 4)
    with pytest.raises(CacheAccountingError):
        cache.reserve(1, 1)


def test_reserve_beyond_run_length_rejected():
    _sim, cache = make_cache(capacity=200, blocks_per_run=5)
    with pytest.raises(CacheAccountingError):
        cache.reserve(0, 6)


def test_preload_installs_resident_blocks():
    _sim, cache = make_cache()
    cache.preload(0, 2)
    state = cache.runs[0]
    assert state.cached == 2
    assert state.in_flight == 0
    assert cache.free == 8
    cache.check()


def test_arrival_moves_block_from_flight_to_resident():
    _sim, cache = make_cache()
    cache.reserve(0, 2)
    cache.block_arrived(0, 0)
    state = cache.runs[0]
    assert state.cached == 1 and state.in_flight == 1
    cache.block_arrived(0, 1)
    assert state.cached == 2 and state.in_flight == 0
    cache.check()


def test_out_of_order_arrival_rejected():
    _sim, cache = make_cache()
    cache.reserve(0, 2)
    with pytest.raises(CacheAccountingError):
        cache.block_arrived(0, 1)


def test_arrival_without_reservation_rejected():
    _sim, cache = make_cache()
    with pytest.raises(CacheAccountingError):
        cache.block_arrived(0, 0)


def test_deplete_frees_space_in_fifo_order():
    _sim, cache = make_cache()
    cache.preload(0, 3)
    assert cache.deplete(0) == 0
    assert cache.deplete(0) == 1
    assert cache.free == 9
    assert cache.runs[0].next_deplete == 2
    cache.check()


def test_deplete_empty_run_rejected():
    _sim, cache = make_cache()
    with pytest.raises(CacheAccountingError):
        cache.deplete(0)


def test_arrival_event_fires_waiter():
    sim, cache = make_cache()
    cache.reserve(0, 1)
    event = cache.arrival_event(0, 0)
    cache.block_arrived(0, 0)
    sim.run()
    assert event.fired
    assert event.value == (0, 0)


def test_arrival_event_for_non_inflight_block_rejected():
    _sim, cache = make_cache()
    cache.preload(0, 1)
    with pytest.raises(CacheAccountingError):
        cache.arrival_event(0, 0)  # resident, not in flight
    with pytest.raises(CacheAccountingError):
        cache.arrival_event(0, 5)  # still on disk


def test_arrival_event_deduplicated():
    _sim, cache = make_cache()
    cache.reserve(0, 1)
    assert cache.arrival_event(0, 0) is cache.arrival_event(0, 0)


def test_run_state_zones():
    _sim, cache = make_cache(capacity=20)
    cache.preload(0, 3)
    cache.deplete(0)
    cache.reserve(0, 4)
    state = cache.runs[0]
    assert state.depleted == 1
    assert state.cached == 2
    assert state.in_flight == 4
    assert state.next_fetch == 7
    assert state.on_disk == 93
    assert state.unmerged == 99
    assert not state.finished


def test_finished_run():
    _sim, cache = make_cache(capacity=10, blocks_per_run=2)
    cache.preload(0, 2)
    cache.deplete(0)
    cache.deplete(0)
    assert cache.runs[0].finished


def test_min_free_statistic():
    _sim, cache = make_cache(capacity=10)
    cache.reserve(0, 7)
    assert cache.min_free == 3
    cache.block_arrived(0, 0)
    cache.deplete(0)
    assert cache.min_free == 3  # historical minimum sticks


def test_space_conservation_under_mixed_operations():
    _sim, cache = make_cache(capacity=10, runs=3)
    cache.preload(0, 2)
    cache.preload(1, 2)
    cache.reserve(2, 3)
    cache.block_arrived(2, 0)
    cache.deplete(0)
    cache.deplete(2)
    cache.check()
    total = sum(s.cached + s.in_flight for s in cache.runs)
    assert total + cache.free == 10


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(CacheAccountingError):
        BlockCache(sim, capacity=0, runs=1, blocks_per_run=1)


def test_mean_occupancy_time_weighted():
    sim, cache = make_cache(capacity=10)
    cache.preload(0, 4)

    def body():
        yield sim.timeout(10.0)
        cache.deplete(0)
        cache.deplete(0)
        yield sim.timeout(10.0)
        cache.deplete(0)

    sim.process(body())
    sim.run()
    # 4 blocks for 10ms, then 2 blocks for 10ms: mean 3 over 20ms.
    assert cache.mean_occupancy() == pytest.approx(3.0)
