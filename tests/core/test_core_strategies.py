"""Tests for fetch planners and victim selection."""

import random

import pytest

from repro.core.cache import BlockCache
from repro.core.parameters import CachePolicy, PrefetchStrategy, VictimSelector
from repro.core.strategies import (
    FetchGroup,
    InterRunPlanner,
    IntraRunPlanner,
    NoPrefetchPlanner,
    VictimChooser,
    build_planner,
)
from repro.disks.layout import RunLayout
from repro.sim import Simulator


class View:
    """Minimal SystemView for planner tests."""

    def __init__(self, k=10, d=5, blocks_per_run=100, capacity=500,
                 heads=None):
        sim = Simulator()
        self.layout = RunLayout(num_runs=k, num_disks=d,
                                blocks_per_run=blocks_per_run)
        self.cache = BlockCache(sim, capacity=capacity, runs=k,
                                blocks_per_run=blocks_per_run)
        self._heads = heads or {}

    def head_cylinder(self, disk):
        return self._heads.get(disk, 0)


def chooser(selector=VictimSelector.RANDOM, seed=0):
    return VictimChooser(selector, random.Random(seed))


def test_no_prefetch_plans_single_demand_block():
    plan = NoPrefetchPlanner().plan(View(), demand_run=3)
    assert plan.groups == (FetchGroup(3, 1, demand=True),)
    assert not plan.counts_as_decision


def test_intra_run_plans_n_blocks():
    plan = IntraRunPlanner(8).plan(View(), demand_run=2)
    assert plan.groups == (FetchGroup(2, 8, demand=True),)
    assert plan.total_blocks == 8


def test_intra_run_clamps_to_remaining_blocks():
    view = View(blocks_per_run=100)
    view.cache.reserve(2, 97)  # only 3 blocks left on disk
    plan = IntraRunPlanner(8).plan(view, demand_run=2)
    assert plan.groups[0].count == 3


def test_inter_run_full_plan_covers_every_disk():
    view = View(k=10, d=5)
    planner = InterRunPlanner(4, num_disks=5, policy=CachePolicy.CONSERVATIVE,
                              chooser=chooser(), rng=random.Random(1))
    plan = planner.plan(view, demand_run=0)
    assert plan.full_prefetch and plan.counts_as_decision
    assert len(plan.groups) == 5
    assert plan.groups[0] == FetchGroup(0, 4, demand=True)
    disks = {view.layout.disk_of_run(g.run) for g in plan.groups}
    assert disks == {0, 1, 2, 3, 4}
    assert plan.total_blocks == 20


def test_inter_run_conservative_falls_back_to_demand_block():
    view = View(k=10, d=5, capacity=19)  # < D*N = 20
    planner = InterRunPlanner(4, num_disks=5, policy=CachePolicy.CONSERVATIVE,
                              chooser=chooser(), rng=random.Random(1))
    plan = planner.plan(view, demand_run=0)
    assert not plan.full_prefetch and plan.counts_as_decision
    assert plan.groups == (FetchGroup(0, 1, demand=True),)


def test_inter_run_greedy_spends_available_space():
    view = View(k=10, d=5, capacity=10)  # < D*N = 20 but room for partial
    planner = InterRunPlanner(4, num_disks=5, policy=CachePolicy.GREEDY,
                              chooser=chooser(), rng=random.Random(1))
    plan = planner.plan(view, demand_run=0)
    assert not plan.full_prefetch and plan.counts_as_decision
    assert plan.groups[0].run == 0 and plan.groups[0].count == 4
    assert plan.total_blocks == 10


def test_inter_run_skips_exhausted_disks():
    view = View(k=5, d=5, blocks_per_run=10, capacity=200)
    # Exhaust every run on disk 1 (run 1 only).
    view.cache.reserve(1, 10)
    planner = InterRunPlanner(2, num_disks=5, policy=CachePolicy.CONSERVATIVE,
                              chooser=chooser(), rng=random.Random(1))
    plan = planner.plan(view, demand_run=0)
    assert plan.full_prefetch  # decision-level: space was available
    assert len(plan.groups) == 4  # disk 1 had nothing to prefetch
    assert all(g.run != 1 for g in plan.groups)


def test_inter_run_prefetch_group_clamped_to_disk_blocks():
    view = View(k=5, d=5, blocks_per_run=10, capacity=200)
    view.cache.reserve(1, 9)  # one block left
    planner = InterRunPlanner(4, num_disks=5, policy=CachePolicy.CONSERVATIVE,
                              chooser=chooser(), rng=random.Random(1))
    plan = planner.plan(view, demand_run=0)
    group_for_run_1 = [g for g in plan.groups if g.run == 1]
    assert group_for_run_1 and group_for_run_1[0].count == 1


def adaptive_planner(depth=4, d=5):
    return InterRunPlanner(depth, num_disks=d, policy=CachePolicy.CONSERVATIVE,
                           chooser=chooser(), rng=random.Random(1),
                           adaptive=True)


def test_adaptive_full_depth_when_cache_roomy():
    view = View(k=10, d=5, capacity=500)
    plan = adaptive_planner().plan(view, demand_run=0)
    assert plan.full_prefetch
    assert all(group.count == 4 for group in plan.groups)
    assert len(plan.groups) == 5


def test_adaptive_shrinks_depth_to_free_space():
    view = View(k=10, d=5, capacity=100)
    view.cache.reserve(0, 89)  # 11 free: depth' = 11 // 5 = 2
    plan = adaptive_planner().plan(view, demand_run=1)
    assert not plan.full_prefetch  # depth 2 < requested 4
    assert plan.counts_as_decision
    assert len(plan.groups) == 5
    assert max(group.count for group in plan.groups) == 2


def test_adaptive_falls_back_to_demand_block_when_starved():
    view = View(k=10, d=5, capacity=100)
    view.cache.reserve(0, 97)  # 3 free < D
    plan = adaptive_planner().plan(view, demand_run=1)
    assert plan.groups == (FetchGroup(1, 1, demand=True),)
    assert not plan.full_prefetch


def test_adaptive_merge_completes_and_beats_fixed_at_tight_cache():
    from repro.core.parameters import PrefetchStrategy, SimulationConfig
    from repro.core.simulator import MergeSimulation

    base = dict(
        num_runs=10, num_disks=5, strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=5, cache_capacity=60, blocks_per_run=60, trials=2,
    )
    fixed = MergeSimulation(SimulationConfig(**base)).run()
    adaptive = MergeSimulation(
        SimulationConfig(adaptive_depth=True, **base)
    ).run()
    assert adaptive.trials[0].blocks_depleted == 600
    assert adaptive.total_time_s.mean <= fixed.total_time_s.mean


def test_random_chooser_uses_rng():
    view = View()
    picks = {chooser(seed=s).choose(view, 1, [1, 6]) for s in range(20)}
    assert picks == {1, 6}


def test_nearest_head_chooser():
    view = View(k=10, d=5, heads={1: 0})
    # On disk 1 live runs 1 (slot 0, cylinder 0) and 6 (slot 1, cyl 1).
    pick = chooser(VictimSelector.NEAREST_HEAD).choose(view, 1, [1, 6])
    assert pick == 1
    view_far = View(k=10, d=5, heads={1: 10})
    pick = chooser(VictimSelector.NEAREST_HEAD).choose(view_far, 1, [1, 6])
    assert pick == 6


def test_round_robin_chooser_cycles():
    view = View()
    rr = chooser(VictimSelector.ROUND_ROBIN)
    picks = [rr.choose(view, 1, [1, 6]) for _ in range(4)]
    assert picks == [1, 6, 1, 6]


def test_most_depleted_chooser_prefers_starved_run():
    view = View(k=10, d=5, capacity=500)
    view.cache.preload(1, 5)
    view.cache.preload(6, 1)
    pick = chooser(VictimSelector.MOST_DEPLETED).choose(view, 1, [1, 6])
    assert pick == 6


def test_chooser_requires_candidates():
    with pytest.raises(ValueError):
        chooser().choose(View(), 1, [])


def test_build_planner_dispatch():
    rng = random.Random(0)
    assert isinstance(
        build_planner(PrefetchStrategy.NONE, 1, 5, CachePolicy.CONSERVATIVE,
                      VictimSelector.RANDOM, rng),
        NoPrefetchPlanner,
    )
    assert isinstance(
        build_planner(PrefetchStrategy.INTRA_RUN, 5, 5,
                      CachePolicy.CONSERVATIVE, VictimSelector.RANDOM, rng),
        IntraRunPlanner,
    )
    assert isinstance(
        build_planner(PrefetchStrategy.INTER_RUN, 5, 5,
                      CachePolicy.CONSERVATIVE, VictimSelector.RANDOM, rng),
        InterRunPlanner,
    )


def test_fetch_group_validation():
    with pytest.raises(ValueError):
        FetchGroup(0, 0)
    with pytest.raises(ValueError):
        IntraRunPlanner(0)
