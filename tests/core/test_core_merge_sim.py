"""Tests for the merge-phase simulation engine (small configurations)."""

import pytest

from repro.core.merge_sim import MergeTrial
from repro.core.parameters import (
    CachePolicy,
    DiskParameters,
    PrefetchStrategy,
    SimulationConfig,
)

FAST_DISK = DiskParameters(
    seek_ms_per_cylinder=0.03,
    avg_rotational_latency_ms=8.33,
    transfer_ms_per_block=2.05,
)


def config(**kwargs):
    defaults = dict(
        num_runs=4,
        num_disks=2,
        blocks_per_run=50,
        trials=1,
        disk=FAST_DISK,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def run(cfg, seed=1, depletion_source=None):
    return MergeTrial(cfg, seed=seed, depletion_source=depletion_source).run()


def test_all_blocks_depleted():
    metrics = run(config())
    assert metrics.blocks_depleted == 4 * 50


def test_every_non_preloaded_block_fetched_exactly_once():
    cfg = config(strategy=PrefetchStrategy.NONE)
    metrics = run(cfg)
    preloaded = cfg.num_runs * cfg.initial_blocks_per_run
    assert metrics.blocks_fetched == cfg.total_blocks - preloaded


def test_intra_run_fetches_fewer_requests():
    none = run(config(strategy=PrefetchStrategy.NONE))
    intra = run(config(strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=5))
    assert intra.fetch_requests < none.fetch_requests
    assert intra.total_time_ms < none.total_time_ms


def test_deterministic_given_seed():
    first = run(config(), seed=7)
    second = run(config(), seed=7)
    assert first.total_time_ms == second.total_time_ms
    assert first.blocks_fetched == second.blocks_fetched


def test_different_seeds_differ():
    first = run(config(), seed=1)
    second = run(config(), seed=2)
    assert first.total_time_ms != second.total_time_ms


def test_multi_disk_faster_than_single_disk():
    single = run(config(num_disks=1, strategy=PrefetchStrategy.NONE))
    multi = run(config(num_disks=2, strategy=PrefetchStrategy.NONE))
    assert multi.total_time_ms < single.total_time_ms


def test_unsync_never_slower_than_sync_inter_run():
    base = dict(
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=5,
        cache_capacity=200,
    )
    sync = run(config(synchronized=True, **base))
    unsync = run(config(synchronized=False, **base))
    assert unsync.total_time_ms <= sync.total_time_ms * 1.01


def test_success_ratio_one_with_huge_cache():
    metrics = run(
        config(
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=5,
            cache_capacity=4 * 50,  # everything fits
        )
    )
    assert metrics.success_ratio == pytest.approx(1.0)


def test_success_ratio_below_one_with_tight_cache():
    metrics = run(
        config(
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=5,
            cache_capacity=21,  # barely above k*N = 20
        )
    )
    assert 0.0 <= metrics.success_ratio < 0.5


def test_finite_cpu_slows_merge():
    fast = run(config(cpu_ms_per_block=0.0))
    slow = run(config(cpu_ms_per_block=1.0))
    assert slow.total_time_ms > fast.total_time_ms
    assert slow.cpu_busy_ms == pytest.approx(200.0)


def test_cpu_lower_bound_respected():
    metrics = run(config(cpu_ms_per_block=5.0))
    assert metrics.total_time_ms >= 4 * 50 * 5.0


def test_depletion_source_round_robin():
    sequence = [0, 1, 2, 3] * 50
    metrics = run(config(), depletion_source=iter(sequence))
    assert metrics.blocks_depleted == 200


def test_depletion_source_bad_run_rejected():
    sequence = [0] * 51  # run 0 has only 50 blocks
    with pytest.raises(RuntimeError):
        run(config(), depletion_source=iter(sequence))


def test_concurrency_bounded_by_disks():
    metrics = run(
        config(
            num_disks=2,
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=5,
            cache_capacity=100,
        )
    )
    assert 0 < metrics.average_concurrency <= 2.0
    assert metrics.peak_concurrency <= 2


def test_single_disk_concurrency_is_one():
    metrics = run(config(num_disks=1, strategy=PrefetchStrategy.NONE))
    assert metrics.average_concurrency == pytest.approx(1.0)
    assert metrics.peak_concurrency == 1


def test_demand_hits_in_flight_only_with_prefetching():
    none = run(config(strategy=PrefetchStrategy.NONE))
    assert none.demand_hits_in_flight == 0


def test_greedy_policy_runs_to_completion():
    metrics = run(
        config(
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=5,
            cache_capacity=30,
            cache_policy=CachePolicy.GREEDY,
        )
    )
    assert metrics.blocks_depleted == 200


def test_seek_time_zero_for_single_run_per_disk():
    """With one run per disk every fetch targets the same region the
    head is already in (sequential run consumption)."""
    metrics = run(
        config(
            num_runs=2,
            num_disks=2,
            strategy=PrefetchStrategy.NONE,
            blocks_per_run=50,
        )
    )
    total_seek = sum(stats.seek_ms for stats in metrics.drive_stats)
    assert total_seek == pytest.approx(0.0)


def test_metrics_time_positive_and_consistent():
    metrics = run(config())
    assert metrics.total_time_ms > 0
    assert metrics.total_time_s == pytest.approx(metrics.total_time_ms / 1000)
    assert metrics.mean_io_ms_per_block == pytest.approx(
        metrics.total_time_ms / metrics.blocks_depleted
    )
