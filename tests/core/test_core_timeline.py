"""Tests for timeline recording and rendering."""

import pytest

from repro.core.merge_sim import MergeTrial
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.timeline import downsample, render_sparkline, utilization_report


def test_downsample_constant_function():
    timeline = [(0.0, 3.0)]
    assert downsample(timeline, 4, 100.0) == [3.0, 3.0, 3.0, 3.0]


def test_downsample_step_change_at_midpoint():
    timeline = [(0.0, 0.0), (50.0, 4.0)]
    assert downsample(timeline, 2, 100.0) == [0.0, 4.0]


def test_downsample_partial_bucket_weighting():
    timeline = [(0.0, 0.0), (25.0, 4.0)]
    # First bucket: 25ms at 0 + 25ms at 4 = mean 2.
    assert downsample(timeline, 2, 100.0) == [2.0, 4.0]


def test_downsample_empty_timeline():
    assert downsample([], 3, 100.0) == [0.0, 0.0, 0.0]


def test_downsample_zero_duration():
    assert downsample([(0.0, 1.0)], 3, 0.0) == [0.0, 0.0, 0.0]


def test_downsample_invalid_buckets():
    with pytest.raises(ValueError):
        downsample([(0.0, 1.0)], 0, 10.0)


def test_sparkline_levels():
    line = render_sparkline([0.0, 0.5, 1.0], maximum=1.0)
    assert len(line) == 3
    assert line[0] == " "
    assert line[2] == "@"


def test_sparkline_clamps_out_of_range():
    line = render_sparkline([-1.0, 2.0], maximum=1.0)
    assert line == " @"


def test_sparkline_requires_positive_maximum():
    with pytest.raises(ValueError):
        render_sparkline([1.0], maximum=0.0)


def _run_with_timelines():
    config = SimulationConfig(
        num_runs=4, num_disks=2, strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=3, blocks_per_run=40, trials=1,
        record_timelines=True,
    )
    return config, MergeTrial(config, seed=5).run()


def test_simulation_records_timelines_when_asked():
    _config, metrics = _run_with_timelines()
    assert metrics.concurrency_timeline is not None
    assert metrics.cache_timeline is not None
    assert metrics.concurrency_timeline[0] == (0.0, 0.0)
    # Values stay within physical bounds.
    assert all(0 <= v <= 2 for _t, v in metrics.concurrency_timeline)
    assert all(0 <= v <= 12 for _t, v in metrics.cache_timeline)
    times = [t for t, _v in metrics.concurrency_timeline]
    assert times == sorted(times)


def test_timelines_absent_by_default():
    config = SimulationConfig(
        num_runs=4, num_disks=2, blocks_per_run=20, trials=1,
    )
    metrics = MergeTrial(config, seed=5).run()
    assert metrics.concurrency_timeline is None
    assert metrics.cache_timeline is None


def test_utilization_report_renders():
    config, metrics = _run_with_timelines()
    report = utilization_report(
        metrics, num_disks=2, cache_capacity=config.resolved_cache_capacity,
        buckets=20,
    )
    assert "busy disks /2" in report
    assert "cache used /12" in report
    assert "mean busy disks" in report


def test_utilization_report_requires_recording():
    config = SimulationConfig(num_runs=2, num_disks=1, blocks_per_run=10,
                              trials=1)
    metrics = MergeTrial(config, seed=1).run()
    with pytest.raises(ValueError, match="record_timelines"):
        utilization_report(metrics, 1, 2)


def test_cli_timeline_flag(capsys):
    from repro.cli import main

    main([
        "simulate", "-k", "4", "-D", "2", "--strategy", "intra-run",
        "-N", "2", "--blocks", "30", "--trials", "1", "--timeline",
    ])
    out = capsys.readouterr().out
    assert "busy disks /2" in out
    assert "95% CI" in out
