"""Tests for the concurrency tracker and metric helpers."""

import pytest

from repro.core.metrics import ConcurrencyTracker
from repro.sim import Simulator


def test_tracker_starts_idle():
    sim = Simulator()
    tracker = ConcurrencyTracker(sim, num_disks=3)
    assert tracker.average_concurrency() == 0.0
    assert tracker.busy_fraction() == 0.0


def test_single_disk_busy_interval():
    sim = Simulator()
    tracker = ConcurrencyTracker(sim, num_disks=2)

    def body():
        tracker.on_busy_change(0, True)
        yield sim.timeout(10.0)
        tracker.on_busy_change(0, False)
        yield sim.timeout(10.0)

    sim.process(body())
    sim.run()
    assert tracker.average_concurrency() == pytest.approx(1.0)
    assert tracker.busy_fraction() == pytest.approx(0.5)
    assert tracker.peak == 1


def test_overlapping_disks_average():
    sim = Simulator()
    tracker = ConcurrencyTracker(sim, num_disks=2)

    def body():
        tracker.on_busy_change(0, True)
        yield sim.timeout(5.0)
        tracker.on_busy_change(1, True)
        yield sim.timeout(5.0)
        tracker.on_busy_change(0, False)
        tracker.on_busy_change(1, False)

    sim.process(body())
    sim.run()
    # 5ms at 1 busy + 5ms at 2 busy over 10ms active = 1.5 average.
    assert tracker.average_concurrency() == pytest.approx(1.5)
    assert tracker.peak == 2


def test_duplicate_transitions_ignored():
    sim = Simulator()
    tracker = ConcurrencyTracker(sim, num_disks=1)
    tracker.on_busy_change(0, True)
    tracker.on_busy_change(0, True)
    sim.timeout(2.0)
    sim.run()
    tracker.on_busy_change(0, False)
    tracker.on_busy_change(0, False)
    assert tracker.peak == 1
    assert tracker.average_concurrency() == pytest.approx(1.0)


def test_idle_gaps_excluded_from_average():
    sim = Simulator()
    tracker = ConcurrencyTracker(sim, num_disks=2)

    def body():
        tracker.on_busy_change(0, True)
        yield sim.timeout(4.0)
        tracker.on_busy_change(0, False)
        yield sim.timeout(6.0)  # idle gap
        tracker.on_busy_change(0, True)
        tracker.on_busy_change(1, True)
        yield sim.timeout(4.0)
        tracker.on_busy_change(0, False)
        tracker.on_busy_change(1, False)

    sim.process(body())
    sim.run()
    # Active: 4ms at 1 + 4ms at 2 = average 1.5; idle 6ms excluded.
    assert tracker.average_concurrency() == pytest.approx(1.5)
    assert tracker.busy_fraction() == pytest.approx(8.0 / 14.0)
