"""Tests for the experiment registry and result containers."""

import pytest

from repro.experiments import Scale, all_experiments, get_experiment
from repro.experiments.config import ExperimentResult, Table

EXPECTED_PRIMARY_IDS = {
    "fig-3.2a", "fig-3.2b", "fig-3.2c", "fig-3.3",
    "fig-3.5a", "fig-3.5b", "fig-3.5c",
    "tab-seek", "tab-single", "tab-intra-1d", "tab-multi-nopf",
    "tab-urn", "tab-inter-sync", "tab-bounds", "tab-markov",
    "ablation-cache-policy", "ablation-selector",
    "ablation-depletion-model", "ablation-streaming", "ablation-k100",
    "ablation-queue-discipline", "ext-write-traffic", "ext-pass-planning",
    "ext-adaptive-depth", "ext-skewed-depletion",
}

EXPECTED_ALIASES = {"fig-3.6a", "fig-3.6b", "fig-3.6c"}


def test_every_paper_artifact_is_registered():
    ids = {e.experiment_id for e in all_experiments()}
    assert EXPECTED_PRIMARY_IDS <= ids
    assert EXPECTED_ALIASES <= ids


def test_figure_36_aliases_point_to_35():
    alias = get_experiment("fig-3.6a")
    assert "alias of fig-3.5a" in alias.description
    assert alias.runner is get_experiment("fig-3.5a").runner


def test_unknown_experiment_lists_known_ids():
    with pytest.raises(KeyError, match="fig-3.2a"):
        get_experiment("nope")


def test_every_experiment_has_paper_reference():
    for experiment in all_experiments():
        assert experiment.paper_reference
        assert experiment.title
        assert experiment.description


def test_scale_presets():
    full, quick = Scale.full(), Scale.quick()
    assert full.trials == 5 and full.blocks_per_run == 1000
    assert quick.trials < full.trials
    assert quick.blocks_per_run < full.blocks_per_run


def test_scale_thin_keeps_endpoints():
    scale = Scale(trials=1, blocks_per_run=10, sweep_density=0.5)
    values = [1, 2, 3, 4, 5, 6, 7]
    thinned = scale.thin(values)
    assert thinned[0] == 1
    assert thinned[-1] == 7
    assert len(thinned) < len(values)


def test_scale_full_density_keeps_everything():
    scale = Scale.full()
    assert scale.thin([1, 2, 3]) == [1, 2, 3]


def test_table_render_alignment():
    table = Table(
        title="demo",
        headers=["name", "value"],
        rows=[["a", 1.5], ["long-name", 22]],
    )
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.50" in text and "22" in text


def test_experiment_result_render():
    result = ExperimentResult(
        experiment_id="x",
        title="demo",
        tables=[Table("t", ["a"], [[1]])],
        notes=["remember this"],
    )
    text = result.render()
    assert "== x: demo ==" in text
    assert "note: remember this" in text
