"""Smoke-run every experiment at a tiny scale.

These verify that each registered experiment executes end to end and
emits the expected table structure; they use a scale far below quick()
so the whole module stays fast.
"""

import io

import pytest

from repro.experiments import Scale, all_experiments, get_experiment
from repro.experiments.runner import default_experiment_ids, run_experiments

TINY = Scale(trials=1, blocks_per_run=40, sweep_density=0.25)

FAST_IDS = [
    "tab-seek", "tab-single", "tab-multi-nopf", "tab-inter-sync",
    "ablation-selector", "ablation-streaming",
]


@pytest.mark.parametrize("experiment_id", FAST_IDS)
def test_experiment_runs_and_renders(experiment_id):
    result = get_experiment(experiment_id).run(TINY)
    assert result.tables
    text = result.render()
    assert experiment_id in text
    for table in result.tables:
        assert table.rows, f"{experiment_id} produced an empty table"


@pytest.mark.slow
def test_fig_32a_shape():
    result = get_experiment("fig-3.2a").run(TINY)
    table = result.tables[0]
    assert table.headers[0] == "N"
    n_values = [row[0] for row in table.rows]
    assert n_values[0] == 1 and n_values[-1] == 30
    # Intra-run on one disk must dominate (be slowest) everywhere.
    for row in table.rows:
        _n, intra1, intra5, inter5 = row
        assert intra1 > intra5
        assert inter5 < intra1


@pytest.mark.slow
def test_fig_33_cpu_monotone_for_sync():
    result = get_experiment("fig-3.3").run(TINY)
    table = result.tables[0]
    sync_col = [row[2] for row in table.rows]  # inter-run synchronized
    assert sync_col == sorted(sync_col)


@pytest.mark.slow
def test_fig_35a_structure():
    result = get_experiment("fig-3.5a").run(TINY)
    table = result.tables[0]
    assert table.headers[0] == "cache"
    # Cells below the minimum cache are dashes.
    first_row = table.rows[0]
    assert first_row[0] == 25
    assert first_row[3] == "-"  # N=5 needs 125 blocks
    # Success ratio should be non-decreasing in cache size for N=10.
    n10_sr = [row[6] for row in table.rows if row[6] != "-"]
    assert all(isinstance(v, float) for v in n10_sr)


@pytest.mark.slow
def test_tab_urn_measured_concurrency():
    result = get_experiment("tab-urn").run(TINY)
    measured = result.tables[1]
    for row in measured.rows:
        assert 1.0 <= row[3] <= 10.0  # measured concurrency in range


@pytest.mark.slow
def test_ablation_depletion_model_diverges_on_sorted_data():
    result = get_experiment("ablation-depletion-model").run(TINY)
    rows = {row[0]: row for row in result.tables[0].rows}
    random_time = rows["random model"][1]
    uniform_time = rows["real merge: uniform"][1]
    nearly_sorted_time = rows["real merge: nearly-sorted"][1]
    assert uniform_time == pytest.approx(random_time, rel=0.2)
    assert nearly_sorted_time > random_time * 1.5


def test_default_experiment_ids_exclude_aliases():
    ids = default_experiment_ids()
    assert "fig-3.5a" in ids
    assert "fig-3.6a" not in ids


def test_default_ids_can_exclude_ablations():
    ids = default_experiment_ids(include_ablations=False)
    assert all(not i.startswith("ablation-") for i in ids)


def test_run_experiments_streams_reports():
    buffer = io.StringIO()
    results = run_experiments(["tab-seek"], TINY, stream=buffer)
    assert len(results) == 1
    assert "tab-seek" in buffer.getvalue()
    assert "finished in" in buffer.getvalue()


def test_all_experiments_have_unique_runners_except_aliases():
    seen = {}
    for experiment in all_experiments():
        if experiment.description.startswith("(alias of"):
            continue
        assert experiment.runner not in seen, (
            f"{experiment.experiment_id} shares a runner with "
            f"{seen.get(experiment.runner)}"
        )
        seen[experiment.runner] = experiment.experiment_id
