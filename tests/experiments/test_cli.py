"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig-3.2a" in out
    assert "tab-urn" in out


def test_paper_check_all_pass(capsys):
    assert main(["paper-check"]) == 0
    out = capsys.readouterr().out
    assert "13/13 analytical checks match" in out
    assert "FAIL" not in out


def test_simulate_small_configuration(capsys):
    code = main([
        "simulate", "-k", "4", "-D", "2", "--strategy", "intra-run",
        "-N", "3", "--blocks", "30", "--trials", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "total time" in out
    assert "k=4 D=2" in out


def test_simulate_inter_run_reports_success_ratio(capsys):
    main([
        "simulate", "-k", "4", "-D", "2", "--strategy", "inter-run",
        "-N", "2", "--blocks", "20", "--trials", "1", "--cache", "40",
    ])
    out = capsys.readouterr().out
    assert "success ratio" in out


def test_selfcheck_passes(capsys):
    assert main(["selfcheck"]) == 0
    out = capsys.readouterr().out
    assert "5/5 simulation checks within tolerance" in out
    assert "FAIL" not in out


def test_predict_prints_estimate(capsys):
    code = main(["predict", "-k", "25", "-D", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "357.1" in out  # the paper's 357.2s baseline
    assert "eq(1)" in out


def test_predict_inter_run_sync(capsys):
    main([
        "predict", "-k", "25", "-D", "5", "--strategy", "inter-run",
        "-N", "10", "--sync",
    ])
    out = capsys.readouterr().out
    assert "17.5" in out or "17.6" in out
    assert "0.703" in out


def test_plan_single_pass(capsys):
    assert main(["plan", "-k", "25", "-D", "5", "--cache", "250",
                 "-N", "10"]) == 0
    out = capsys.readouterr().out
    assert "fan-in 25" in out
    assert "pass 0: 25 runs -> 1" in out


def test_plan_multi_pass(capsys):
    main(["plan", "-k", "100", "--cache", "250", "-N", "10"])
    out = capsys.readouterr().out
    assert "pass 0: 100 runs -> 4" in out
    assert "pass 1: 4 runs -> 1" in out


def test_run_with_overrides_writes_report(tmp_path, capsys):
    report = tmp_path / "report.txt"
    code = main([
        "run", "tab-seek", "--quick", "--trials", "1", "--blocks", "50",
        "--seed", "3", "--out", str(report),
    ])
    assert code == 0
    text = report.read_text()
    assert "tab-seek" in text
    assert "Expected seek moves" in text


def test_run_unknown_experiment_reports_failure(capsys):
    code = main(["run", "fig-9.9z", "--quick"])
    assert code == 1
    out = capsys.readouterr().out
    assert "fig-9.9z FAILED" in out
    assert "1 experiment(s) failed: fig-9.9z" in out


def _sweep_args(cache_dir):
    return [
        "sweep", "-k", "3", "-D", "1,2", "--strategy", "intra-run",
        "-N", "2,3", "--blocks", "30", "--trials", "2", "--workers", "2",
        "--cache-dir", str(cache_dir), "--name", "cli-test", "--quiet",
    ]


def test_sweep_runs_grid_and_caches(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main(_sweep_args(cache_dir)) == 0
    out = capsys.readouterr().out
    assert "4 configurations" in out
    assert "8 total = 8 computed + 0 cached" in out
    assert (cache_dir / "campaigns" / "cli-test.json").is_file()

    # Second invocation: same results, zero simulation.
    assert main(_sweep_args(cache_dir)) == 0
    rerun = capsys.readouterr().out
    assert "8 total = 0 computed + 8 cached" in rerun

    def table_lines(text):
        return [line for line in text.splitlines() if line.startswith("k=3")]

    assert table_lines(rerun) == table_lines(out)


def test_sweep_exports_results_and_progress(tmp_path, capsys):
    import json

    export = tmp_path / "sweep.json"
    progress = tmp_path / "progress.json"
    code = main([
        "sweep", "-k", "3", "-D", "1", "--blocks", "20", "--trials", "1",
        "--no-cache", "--quiet",
        "--export", str(export), "--progress-json", str(progress),
    ])
    assert code == 0
    payload = json.loads(export.read_text())
    assert payload["stats"]["computed"] == 1
    assert len(payload["cells"]) == 1
    assert payload["cells"][0]["trials"][0]["total_time_ms"] > 0
    counters = json.loads(progress.read_text())
    assert counters["total"] == 1


def test_run_with_workers_uses_sweep_engine(tmp_path, capsys):
    code = main([
        "run", "tab-seek", "--quick", "--trials", "1", "--blocks", "50",
        "--workers", "2", "--cache-dir", str(tmp_path / "cache"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "tab-seek" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_simulate_trace_prints_timeline(capsys):
    code = main([
        "simulate", "-k", "4", "-D", "2", "--strategy", "intra-run",
        "-N", "2", "--blocks", "20", "--trials", "1", "--trace",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "legend:" in out
    assert "disk-0" in out


def test_simulate_trace_out_writes_valid_chrome_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    code = main([
        "simulate", "-k", "4", "-D", "2", "--strategy", "intra-run",
        "-N", "2", "--blocks", "20", "--trials", "1",
        "--trace-out", str(trace_path),
    ])
    assert code == 0
    assert "chrome trace" in capsys.readouterr().out
    assert main(["trace", "validate", str(trace_path)]) == 0
    assert "valid Chrome trace" in capsys.readouterr().out


def test_trace_validate_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "Z"}]}')
    assert main(["trace", "validate", str(bad)]) == 1
    assert "schema violation" in capsys.readouterr().out


def test_run_replays_bench_scenario_with_trace(tmp_path, capsys):
    trace_path = tmp_path / "smoke.json"
    code = main(["run", "smoke-d2", "--trace-out", str(trace_path)])
    assert code == 0
    out = capsys.readouterr().out
    assert "scenario      : smoke-d2" in out
    assert "trace check" in out
    assert trace_path.exists()


def test_run_rejects_composite_scenario(capsys):
    assert main(["run", "sweep-small"]) == 1
    err = capsys.readouterr().err
    assert "cannot be replayed" in err


def test_sweep_trace_requires_single_worker(capsys):
    code = main([
        "sweep", "-k", "3", "-D", "1", "--blocks", "20", "--trials", "1",
        "--no-cache", "--quiet", "--workers", "2", "--trace",
    ])
    assert code == 2
    assert "--workers 1" in capsys.readouterr().err


def test_kernel_flag_is_uniform_across_commands():
    from repro.cli import _build_parser

    parser = _build_parser()
    for command in (
        ["run", "tab-seek", "--kernel", "fast"],
        ["simulate", "-k", "4", "-D", "2", "--kernel", "fast"],
        ["sweep", "-k", "4", "-D", "2", "--kernel", "fast"],
        ["bench", "run", "--kernel", "fast"],
    ):
        args = parser.parse_args(command)
        assert args.kernel == "fast"
        assert hasattr(args, "trace")
        assert hasattr(args, "faults")
        assert hasattr(args, "seed")
