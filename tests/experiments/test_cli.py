"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_prints_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig-3.2a" in out
    assert "tab-urn" in out


def test_paper_check_all_pass(capsys):
    assert main(["paper-check"]) == 0
    out = capsys.readouterr().out
    assert "13/13 analytical checks match" in out
    assert "FAIL" not in out


def test_simulate_small_configuration(capsys):
    code = main([
        "simulate", "-k", "4", "-D", "2", "--strategy", "intra-run",
        "-N", "3", "--blocks", "30", "--trials", "2",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "total time" in out
    assert "k=4 D=2" in out


def test_simulate_inter_run_reports_success_ratio(capsys):
    main([
        "simulate", "-k", "4", "-D", "2", "--strategy", "inter-run",
        "-N", "2", "--blocks", "20", "--trials", "1", "--cache", "40",
    ])
    out = capsys.readouterr().out
    assert "success ratio" in out


def test_selfcheck_passes(capsys):
    assert main(["selfcheck"]) == 0
    out = capsys.readouterr().out
    assert "5/5 simulation checks within tolerance" in out
    assert "FAIL" not in out


def test_predict_prints_estimate(capsys):
    code = main(["predict", "-k", "25", "-D", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "357.1" in out  # the paper's 357.2s baseline
    assert "eq(1)" in out


def test_predict_inter_run_sync(capsys):
    main([
        "predict", "-k", "25", "-D", "5", "--strategy", "inter-run",
        "-N", "10", "--sync",
    ])
    out = capsys.readouterr().out
    assert "17.5" in out or "17.6" in out
    assert "0.703" in out


def test_plan_single_pass(capsys):
    assert main(["plan", "-k", "25", "-D", "5", "--cache", "250",
                 "-N", "10"]) == 0
    out = capsys.readouterr().out
    assert "fan-in 25" in out
    assert "pass 0: 25 runs -> 1" in out


def test_plan_multi_pass(capsys):
    main(["plan", "-k", "100", "--cache", "250", "-N", "10"])
    out = capsys.readouterr().out
    assert "pass 0: 100 runs -> 4" in out
    assert "pass 1: 4 runs -> 1" in out


def test_run_with_overrides_writes_report(tmp_path, capsys):
    report = tmp_path / "report.txt"
    code = main([
        "run", "tab-seek", "--quick", "--trials", "1", "--blocks", "50",
        "--seed", "3", "--out", str(report),
    ])
    assert code == 0
    text = report.read_text()
    assert "tab-seek" in text
    assert "Expected seek moves" in text


def test_run_unknown_experiment_raises():
    with pytest.raises(KeyError):
        main(["run", "fig-9.9z", "--quick"])


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
