"""Tests for the automated reproduction audit."""

import pytest

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.experiments.validation import (
    PAPER_EXPECTATIONS,
    Expectation,
    render_verdicts,
    validate,
)


def test_expectations_cover_the_papers_printed_values():
    labels = " ".join(e.label for e in PAPER_EXPECTATIONS)
    assert "357.2" in " ".join(str(e.paper_value) for e in PAPER_EXPECTATIONS)
    assert "no prefetch, k=25, 1 disk" in labels
    assert "sync inter-run" in labels
    assert "urn-game" in labels
    assert len(PAPER_EXPECTATIONS) >= 10


def test_every_expectation_has_positive_tolerance_and_source():
    for expectation in PAPER_EXPECTATIONS:
        assert 0 < expectation.tolerance < 0.5
        assert expectation.source
        assert expectation.paper_value > 0


def _tiny_expectation(paper_value, tolerance):
    return Expectation(
        label="tiny",
        paper_value=paper_value,
        tolerance=tolerance,
        config=SimulationConfig(
            num_runs=4, num_disks=2, strategy=PrefetchStrategy.NONE,
            blocks_per_run=30, trials=1,
        ),
        metric=lambda result: result.total_time_s.mean,
        source="test",
    )


def test_validate_measures_and_judges():
    # First find the true measured value, then build expectations
    # around it to exercise both verdicts.
    probe = validate([_tiny_expectation(1.0, 0.5)])[0]
    measured = probe.measured

    passing = validate([_tiny_expectation(measured, 0.05)])[0]
    assert passing.ok
    assert passing.relative_error < 0.001

    failing = validate([_tiny_expectation(measured * 2, 0.05)])[0]
    assert not failing.ok
    assert failing.relative_error == pytest.approx(0.5, abs=0.01)


def test_validate_scale_override_shrinks_runs():
    expectation = _tiny_expectation(1.0, 0.5)
    full = validate([expectation])[0]
    small = validate([expectation], blocks_per_run=10)[0]
    assert small.measured < full.measured


def test_render_verdicts_format():
    verdicts = validate([_tiny_expectation(1e9, 0.01)])
    text = render_verdicts(verdicts)
    assert "[FAIL]" in text
    assert "0/1 paper values reproduced" in text


@pytest.mark.slow
def test_two_headline_values_reproduce_at_full_scale():
    """A fast subset of `repro validate`: the two cheapest paper values."""
    subset = [
        e for e in PAPER_EXPECTATIONS
        if e.label in (
            "intra-run N=10, k=25, 1 disk",
            "sync inter-run N=10, k=25, 5 disks",
        )
    ]
    assert len(subset) == 2
    verdicts = validate(subset)
    assert all(v.ok for v in verdicts), render_verdicts(verdicts)
