"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.config import Table
from repro.experiments.plotting import Series, chart_from_table, render_chart


def simple_series():
    return [Series.of("linear", [0, 1, 2, 3], [0, 1, 2, 3])]


def test_render_contains_title_axis_and_legend():
    text = render_chart(simple_series(), title="demo", x_label="n", y_label="t")
    assert "demo" in text
    assert "o linear" in text
    assert "x: n   y: t" in text


def test_marker_count_matches_points():
    text = render_chart(simple_series())
    assert text.count("o") >= 4  # legend 'o' + at least 3 distinct cells


def test_multiple_series_use_distinct_markers():
    series = [
        Series.of("a", [0, 1], [0, 1]),
        Series.of("b", [0, 1], [1, 0]),
    ]
    text = render_chart(series)
    assert "o a" in text and "x b" in text


def test_y_floor_pins_zero():
    series = [Series.of("a", [0, 1], [10, 20])]
    floored = render_chart(series)  # default floor 0
    assert " 0 |" in floored
    fitted = render_chart(series, y_floor=None)
    assert "10 |" in fitted


def test_axis_labels_show_data_range():
    series = [Series.of("a", [5, 50], [1, 2])]
    text = render_chart(series)
    assert "5" in text and "50" in text


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        render_chart([])
    with pytest.raises(ValueError):
        render_chart([Series("empty", ())])


def test_tiny_dimensions_rejected():
    with pytest.raises(ValueError):
        render_chart(simple_series(), width=4)
    with pytest.raises(ValueError):
        render_chart(simple_series(), height=2)


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        Series.of("bad", [1, 2], [1])


def test_constant_data_does_not_crash():
    text = render_chart([Series.of("flat", [1, 2, 3], [5, 5, 5])])
    assert "flat" in text


def test_chart_from_table_skips_non_numeric_cells():
    table = Table(
        title="t",
        headers=["x", "y1", "y2"],
        rows=[[1, 2.0, "-"], [2, 3.0, 4.0], [3, "-", 5.0]],
    )
    text = chart_from_table(table, "x", ["y1", "y2"])
    assert "o y1" in text and "x y2" in text


def test_chart_from_table_uses_table_title_by_default():
    table = Table(title="my sweep", headers=["x", "y"], rows=[[1, 1], [2, 2]])
    assert "my sweep" in chart_from_table(table, "x", ["y"])
