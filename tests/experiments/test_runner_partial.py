"""The batch runner survives a failing experiment and reports its id."""

import io

import pytest

from repro.experiments.config import (
    _REGISTRY,
    ExperimentResult,
    Scale,
    register,
)
from repro.experiments.runner import failed_experiment_ids, run_experiments

SCALE = Scale(trials=1, blocks_per_run=20, sweep_density=0.25)


@pytest.fixture
def doomed_experiment():
    experiment_id = "test-doomed"

    @register(experiment_id, "Always fails", "none", "test fixture")
    def _runner(scale):
        raise RuntimeError("injected failure")

    yield experiment_id
    del _REGISTRY[experiment_id]


@pytest.fixture
def trivial_experiment():
    experiment_id = "test-trivial"

    @register(experiment_id, "Always succeeds", "none", "test fixture")
    def _runner(scale):
        return ExperimentResult(experiment_id=experiment_id,
                                title="Always succeeds")

    yield experiment_id
    del _REGISTRY[experiment_id]


def test_one_failure_returns_partial_results(doomed_experiment,
                                             trivial_experiment):
    stream = io.StringIO()
    results = run_experiments(
        [trivial_experiment, doomed_experiment, trivial_experiment],
        SCALE,
        stream=stream,
    )
    # Every requested experiment yields a result, failures included.
    assert [r.experiment_id for r in results] == [
        trivial_experiment, doomed_experiment, trivial_experiment,
    ]
    assert [r.ok for r in results] == [True, False, True]
    assert "injected failure" in results[1].error
    assert failed_experiment_ids(results) == [doomed_experiment]
    # The failing id is reported on the stream.
    out = stream.getvalue()
    assert f"[{doomed_experiment} FAILED" in out
    assert "injected failure" in out


def test_unknown_experiment_id_is_reported_not_raised(trivial_experiment):
    stream = io.StringIO()
    results = run_experiments(["no-such-id", trivial_experiment], SCALE,
                              stream=stream)
    assert not results[0].ok
    assert "no-such-id" in stream.getvalue()
    assert results[1].ok


def test_failed_result_renders_error():
    result = ExperimentResult(experiment_id="x", title="(failed)",
                              error="RuntimeError: nope")
    assert "ERROR: RuntimeError: nope" in result.render()
