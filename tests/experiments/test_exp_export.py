"""Tests for JSON/CSV export of experiment results."""

import csv
import json

from repro.cli import main
from repro.experiments.config import ExperimentResult, Table
from repro.experiments.export import (
    export_results,
    load_result_json,
    result_to_json,
    table_to_csv,
)


def sample_result():
    return ExperimentResult(
        experiment_id="fig-9.9x",
        title="demo experiment",
        tables=[
            Table("first table", ["x", "y"], [[1, 2.5], [2, 3.5]]),
            Table("second", ["name"], [["alpha"], ["beta"]]),
        ],
        notes=["a note"],
    )


def test_table_to_csv_roundtrip(tmp_path):
    path = table_to_csv(sample_result().tables[0], tmp_path / "t.csv")
    with open(path) as handle:
        rows = list(csv.reader(handle))
    assert rows == [["x", "y"], ["1", "2.5"], ["2", "3.5"]]


def test_result_to_json_roundtrip(tmp_path):
    path = result_to_json(sample_result(), tmp_path / "r.json")
    loaded = load_result_json(path)
    assert loaded["experiment_id"] == "fig-9.9x"
    assert loaded["tables"][0]["headers"] == ["x", "y"]
    assert loaded["notes"] == ["a note"]


def test_export_results_writes_json_plus_csvs(tmp_path):
    written = export_results([sample_result()], tmp_path)
    assert len(written) == 3  # 1 JSON + 2 CSVs
    names = sorted(p.name for p in written)
    assert names[0].startswith("fig-9-9x")
    assert any(name.endswith(".json") for name in names)
    assert sum(name.endswith(".csv") for name in names) == 2


def test_export_creates_directories(tmp_path):
    nested = tmp_path / "a" / "b"
    written = export_results([sample_result()], nested)
    assert all(path.exists() for path in written)


def test_json_is_valid_and_pretty(tmp_path):
    path = result_to_json(sample_result(), tmp_path / "r.json")
    text = path.read_text()
    json.loads(text)
    assert "\n" in text  # indented


def test_cli_export_dir(tmp_path, capsys):
    export_dir = tmp_path / "exports"
    code = main([
        "run", "tab-seek", "--quick", "--trials", "1", "--blocks", "50",
        "--export-dir", str(export_dir),
    ])
    assert code == 0
    files = list(export_dir.iterdir())
    assert any(f.suffix == ".json" for f in files)
    assert any(f.suffix == ".csv" for f in files)
    out = capsys.readouterr().out
    assert "exported" in out
