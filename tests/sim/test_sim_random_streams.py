"""Tests for named random streams."""

from repro.sim import RandomStreams


def test_same_name_returns_same_stream():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_streams_are_deterministic_across_factories():
    first = RandomStreams(42).stream("disk-0")
    second = RandomStreams(42).stream("disk-0")
    assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]


def test_different_names_give_independent_sequences():
    streams = RandomStreams(42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_give_different_sequences():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_spawn_offsets_seed():
    base = RandomStreams(100)
    sibling = base.spawn(3)
    assert sibling.seed == 103
    assert sibling.stream("x").random() == RandomStreams(103).stream("x").random()


def test_draws_from_one_stream_do_not_disturb_another():
    streams = RandomStreams(7)
    reference_factory = RandomStreams(7)
    b_reference = [reference_factory.stream("b").random() for _ in range(3)]
    # Consume heavily from "a" first.
    a = streams.stream("a")
    for _ in range(1000):
        a.random()
    b = [streams.stream("b").random() for _ in range(3)]
    assert b == b_reference


def test_repr_lists_created_streams():
    streams = RandomStreams(5)
    streams.stream("zeta")
    streams.stream("alpha")
    assert "alpha" in repr(streams) and "zeta" in repr(streams)
