"""Tests for generator-based processes."""

import pytest

from repro.sim import Event, Process, ProcessFailure, SimulationError, Simulator


def test_process_runs_and_returns_value():
    sim = Simulator()

    def body():
        yield sim.timeout(2.0)
        return "finished"

    proc = sim.process(body())
    sim.run()
    assert proc.fired
    assert proc.value == "finished"
    assert sim.now == 2.0


def test_process_receives_event_value():
    sim = Simulator()
    received = []

    def body():
        value = yield sim.timeout(1.0, "payload")
        received.append(value)

    sim.process(body())
    sim.run()
    assert received == ["payload"]


def test_processes_interleave_in_time():
    sim = Simulator()
    log = []

    def worker(name, period, steps):
        for _ in range(steps):
            yield sim.timeout(period)
            log.append((sim.now, name))

    sim.process(worker("fast", 1.0, 3))
    sim.process(worker("slow", 2.0, 2))
    sim.run()
    # At t=2.0 both fire; slow's timeout was scheduled earlier (t=0)
    # so it wins the deterministic tie-break.
    assert log == [
        (1.0, "fast"),
        (2.0, "slow"),
        (2.0, "fast"),
        (3.0, "fast"),
        (4.0, "slow"),
    ]


def test_process_waits_on_manual_event():
    sim = Simulator()
    gate = Event(sim)
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(5.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(5.0, "open")]


def test_process_is_waitable_by_another_process():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(3.0)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        log.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert log == [(3.0, "child-result")]


def test_exception_in_process_wraps_in_process_failure():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)
        raise ValueError("inner")

    proc = sim.process(body(), name="failing")
    sim.run()
    assert isinstance(proc.exception, ProcessFailure)
    assert isinstance(proc.exception.__cause__, ValueError)
    assert "failing" in str(proc.exception)


def test_failed_event_is_thrown_into_waiter():
    sim = Simulator()
    gate = Event(sim)
    caught = []

    def body():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(body())
    gate.fail(ValueError("denied"), delay=1.0)
    sim.run()
    assert caught == ["denied"]


def test_yielding_non_event_fails_the_process():
    sim = Simulator()

    def body():
        yield 42

    proc = sim.process(body())
    sim.run()
    assert isinstance(proc.exception, ProcessFailure)


def test_non_generator_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_is_alive_tracks_completion():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)

    proc = sim.process(body())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_immediate_return_process():
    sim = Simulator()

    def body():
        return "instant"
        yield  # pragma: no cover - makes this a generator

    proc = sim.process(body())
    sim.run()
    assert proc.value == "instant"
    assert sim.now == 0.0


def test_anonymous_processes_get_unique_names():
    sim = Simulator()

    def body():
        yield sim.timeout(1.0)

    first = sim.process(body())
    second = sim.process(body())
    assert first.name != second.name
