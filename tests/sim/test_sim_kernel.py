"""Tests for the DES kernel: clock, scheduling, run loop."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    sim.run()
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    for delay in (3.0, 1.0, 2.0):
        event = sim.event()
        event.add_callback(lambda _e, d=delay: fired.append(d))
        event.succeed(delay=delay)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_ties_broken_by_schedule_order():
    sim = Simulator()
    fired = []
    for name in ("first", "second", "third"):
        event = sim.event()
        event.add_callback(lambda _e, n=name: fired.append(n))
        event.succeed(delay=1.0)
    sim.run()
    assert fired == ["first", "second", "third"]


def test_run_until_horizon_leaves_later_events_queued():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(10.0)
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert sim.pending_events == 1
    sim.run()
    assert sim.now == 10.0


def test_run_until_exactly_event_time_fires_it():
    sim = Simulator()
    fired = []
    sim.timeout(5.0).add_callback(lambda _e: fired.append(True))
    sim.run(until=5.0)
    assert fired == [True]


def test_stop_condition_halts_early():
    sim = Simulator()
    fired = []
    for delay in range(1, 6):
        sim.timeout(float(delay)).add_callback(lambda _e: fired.append(sim.now))
    sim.run(stop_condition=lambda: len(fired) >= 2)
    assert len(fired) == 2
    assert sim.now == 2.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(sim.event(), delay=-1.0)


def test_run_returns_final_time():
    sim = Simulator()
    sim.timeout(7.5)
    assert sim.run() == 7.5


def test_empty_run_is_noop():
    sim = Simulator()
    assert sim.run() == 0.0


def test_nested_scheduling_from_callback():
    sim = Simulator()
    times = []

    def chain(_event):
        times.append(sim.now)
        if len(times) < 3:
            sim.timeout(1.0).add_callback(chain)

    sim.timeout(1.0).add_callback(chain)
    sim.run()
    assert times == [1.0, 2.0, 3.0]


def test_pending_events_counts_scheduled():
    sim = Simulator()
    sim.timeout(1.0)
    sim.timeout(2.0)
    assert sim.pending_events == 2
