"""The kernel registry: the single source of truth for the kernel axis.

``SimulationConfig.kernel`` validation, ``create_kernel``, the CLI
``--kernel`` choices and the bench scenario variants all read the
:mod:`repro.sim.kernel` registry, so registering a kernel in one place
makes it available everywhere — and *un*known names fail with the same
actionable message everywhere.
"""

import pytest

from repro.core.parameters import SimulationConfig
from repro.sim import Simulator
from repro.sim.kernel import (
    KernelSpec,
    available_kernels,
    create_kernel,
    get_kernel,
    kernel_names,
    register_kernel,
    unregister_kernel,
)


@pytest.fixture
def scratch_kernel():
    """Register a throwaway kernel; always unregistered on exit."""
    spec = KernelSpec(
        name="scratch", factory=Simulator, description="test-only"
    )
    register_kernel(spec)
    yield spec
    unregister_kernel("scratch")


# ------------------------------------------------------------ built-ins


def test_builtin_kernels_present():
    assert kernel_names() == ["batch", "fast", "reference"]


def test_available_kernels_sorted_specs():
    specs = available_kernels()
    assert [spec.name for spec in specs] == kernel_names()
    assert all(isinstance(spec, KernelSpec) for spec in specs)
    assert all(spec.description for spec in specs)


def test_only_batch_kernel_has_a_batch_runner():
    runners = {
        spec.name: spec.batch_runner is not None
        for spec in available_kernels()
    }
    assert runners == {"reference": False, "fast": False, "batch": True}


def test_batch_runner_loads_lazily():
    from repro.sim.batch import run_trial_batch

    assert get_kernel("batch").batch_runner() is run_trial_batch


# -------------------------------------------------------- registration


def test_register_and_unregister(scratch_kernel):
    assert "scratch" in kernel_names()
    assert get_kernel("scratch") is scratch_kernel
    assert type(create_kernel("scratch")) is Simulator


def test_duplicate_registration_rejected(scratch_kernel):
    with pytest.raises(ValueError, match="already registered"):
        register_kernel(
            KernelSpec(name="scratch", factory=Simulator)
        )


def test_replace_overrides_existing(scratch_kernel):
    replacement = KernelSpec(
        name="scratch", factory=Simulator, description="v2"
    )
    register_kernel(replacement, replace=True)
    assert get_kernel("scratch").description == "v2"


def test_empty_name_rejected():
    with pytest.raises(ValueError, match="non-empty"):
        register_kernel(KernelSpec(name="", factory=Simulator))


def test_unregister_unknown_rejected():
    with pytest.raises(ValueError, match="not registered"):
        unregister_kernel("never-registered")


# ------------------------------------------------- unknown-name errors


def test_get_kernel_unknown_lists_choices():
    with pytest.raises(
        ValueError,
        match="unknown simulation kernel 'turbo': "
        "choose one of batch, fast, reference",
    ):
        get_kernel("turbo")


def test_config_validation_reads_the_registry(scratch_kernel):
    # A config may name any registered kernel, not a hardcoded set.
    config = SimulationConfig(
        num_runs=4, num_disks=1, blocks_per_run=20, kernel="scratch"
    )
    assert config.kernel == "scratch"
    with pytest.raises(ValueError, match="unknown simulation kernel"):
        SimulationConfig(num_runs=4, num_disks=1, kernel="warp")


# ------------------------------------------------------------ CLI seam


def test_cli_kernel_choices_come_from_registry():
    import repro.cli as cli

    parser = cli._build_parser()
    args = parser.parse_args(["run", "--kernel", "batch", "fig-3.2a"])
    assert args.kernel == "batch"
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--kernel", "turbo", "fig-3.2a"])
