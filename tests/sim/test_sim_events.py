"""Tests for event primitives: Event, Timeout, AllOf, AnyOf."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator, Timeout


def test_event_lifecycle():
    sim = Simulator()
    event = Event(sim)
    assert not event.triggered and not event.fired
    event.succeed("value")
    assert event.triggered and not event.fired
    sim.run()
    assert event.fired and event.ok
    assert event.value == "value"


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = Event(sim)
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()
    with pytest.raises(SimulationError):
        event.fail(RuntimeError("boom"))


def test_value_before_fire_raises():
    sim = Simulator()
    event = Event(sim)
    with pytest.raises(SimulationError):
        _ = event.value


def test_failed_event_raises_on_value():
    sim = Simulator()
    event = Event(sim)
    error = RuntimeError("boom")
    event.fail(error)
    sim.run()
    assert event.exception is error
    with pytest.raises(RuntimeError):
        _ = event.value


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Event(sim).fail("not an exception")  # type: ignore[arg-type]


def test_callback_after_fire_runs_immediately():
    sim = Simulator()
    event = Event(sim)
    event.succeed(42)
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == [42]


def test_timeout_carries_value():
    sim = Simulator()
    timeout = Timeout(sim, 2.0, value="done")
    sim.run()
    assert timeout.value == "done"
    assert sim.now == 2.0


def test_allof_waits_for_all_children():
    sim = Simulator()
    events = [sim.timeout(1.0, "a"), sim.timeout(3.0, "b"), sim.timeout(2.0, "c")]
    combined = AllOf(sim, events)
    sim.run()
    assert combined.fired
    assert combined.value == ["a", "b", "c"]
    assert sim.now == 3.0


def test_allof_empty_fires_immediately():
    sim = Simulator()
    combined = AllOf(sim, [])
    sim.run()
    assert combined.fired and combined.value == []


def test_allof_propagates_failure():
    sim = Simulator()
    good = sim.timeout(1.0)
    bad = Event(sim)
    bad.fail(ValueError("bad"), delay=2.0)
    combined = AllOf(sim, [good, bad])
    sim.run()
    assert isinstance(combined.exception, ValueError)


def test_anyof_fires_on_first_child():
    sim = Simulator()
    slow = sim.timeout(5.0, "slow")
    fast = sim.timeout(1.0, "fast")
    combined = AnyOf(sim, [slow, fast])
    sim.run()
    winner = combined.value
    assert winner is fast
    assert winner.value == "fast"


def test_anyof_does_not_fail_after_success():
    sim = Simulator()
    fast = sim.timeout(1.0)
    bad = Event(sim)
    bad.fail(ValueError("late"), delay=2.0)
    combined = AnyOf(sim, [fast, bad])
    sim.run()
    assert combined.ok


def test_allof_preserves_construction_order_of_values():
    sim = Simulator()
    late = sim.timeout(9.0, "late")
    early = sim.timeout(1.0, "early")
    combined = AllOf(sim, [late, early])
    sim.run()
    assert combined.value == ["late", "early"]
