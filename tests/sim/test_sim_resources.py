"""Tests for Store, PriorityStore and Resource."""

import pytest

from repro.sim import Resource, SimulationError, Simulator, Store
from repro.sim.resources import PriorityStore


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("item")
    got = store.get()
    sim.run()
    assert got.value == "item"


def test_store_is_fifo():
    sim = Simulator()
    store = Store(sim)
    for item in ("a", "b", "c"):
        store.put(item)
    received = [store.get(), store.get(), store.get()]
    sim.run()
    assert [event.value for event in received] == ["a", "b", "c"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    log = []

    def consumer():
        item = yield store.get()
        log.append((sim.now, item))

    def producer():
        yield sim.timeout(4.0)
        store.put("late-item")

    sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert log == [(4.0, "late-item")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=1)
    first = store.put("a")
    second = store.put("b")
    sim.run()
    assert first.fired
    assert not second.fired
    got = store.get()
    sim.run()
    assert got.value == "a"
    assert second.fired
    assert len(store) == 1


def test_store_len_and_waiting_counters():
    sim = Simulator()
    store = Store(sim, capacity=2)
    store.put("x")
    sim.run()
    assert len(store) == 1
    store.get()
    store.get()
    sim.run()
    assert store.waiting_getters == 1


def test_store_rejects_nonpositive_capacity():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_priority_store_returns_smallest():
    sim = Simulator()
    store = PriorityStore(sim)
    for item in (5, 1, 3):
        store.put(item)
    got = [store.get(), store.get(), store.get()]
    sim.run()
    assert [event.value for event in got] == [1, 3, 5]


def test_resource_mutual_exclusion():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def worker(name, hold):
        yield resource.request()
        log.append((sim.now, name, "acquire"))
        yield sim.timeout(hold)
        log.append((sim.now, name, "release"))
        resource.release()

    sim.process(worker("a", 2.0))
    sim.process(worker("b", 1.0))
    sim.run()
    assert log == [
        (0.0, "a", "acquire"),
        (2.0, "a", "release"),
        (2.0, "b", "acquire"),
        (3.0, "b", "release"),
    ]


def test_resource_capacity_two_allows_overlap():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    acquired_at = []

    def worker():
        yield resource.request()
        acquired_at.append(sim.now)
        yield sim.timeout(1.0)
        resource.release()

    for _ in range(3):
        sim.process(worker())
    sim.run()
    assert acquired_at == [0.0, 0.0, 1.0]


def test_resource_release_without_request_raises():
    sim = Simulator()
    resource = Resource(sim)
    with pytest.raises(SimulationError):
        resource.release()


def test_resource_cancel_pending_request():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    resource.request()
    pending = resource.request()
    assert resource.cancel(pending)
    assert not resource.cancel(pending)
    assert resource.queue_length == 0


def test_resource_counters():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    resource.request()
    resource.request()
    resource.request()
    assert resource.in_use == 2
    assert resource.queue_length == 1
