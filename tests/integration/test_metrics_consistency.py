"""Cross-cutting consistency of everything one trial measures.

The same trial is observed by the drive stats, the cache, the
concurrency tracker, the request traces, and the timelines; these
tests assert the views agree with each other -- the kind of internal
double-entry bookkeeping that catches subtle accounting bugs.
"""

import pytest

from repro.core.merge_sim import MergeTrial
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.timeline import downsample


def traced_trial(**kwargs):
    defaults = dict(
        num_runs=10,
        num_disks=4,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=5,
        cache_capacity=120,
        blocks_per_run=80,
        trials=1,
        record_timelines=True,
        record_requests=True,
    )
    defaults.update(kwargs)
    return MergeTrial(SimulationConfig(**defaults), seed=13).run()


@pytest.fixture(scope="module")
def metrics():
    return traced_trial()


def test_drive_blocks_match_fetch_accounting(metrics):
    assert sum(s.blocks for s in metrics.drive_stats) == metrics.blocks_fetched
    assert sum(s.requests for s in metrics.drive_stats) == metrics.fetch_requests


def test_drive_busy_equals_service_decomposition(metrics):
    for stats in metrics.drive_stats:
        assert stats.busy_ms == pytest.approx(
            stats.seek_ms + stats.rotation_ms + stats.transfer_ms
        )


def test_traces_match_drive_stats(metrics):
    from repro.core.tracing import request_statistics

    per_disk_blocks = [0] * 4
    per_disk_service = [0.0] * 4
    for trace in metrics.request_traces:
        per_disk_blocks[trace.disk] += trace.blocks
        per_disk_service[trace.disk] += trace.service_ms
    for disk, stats in enumerate(metrics.drive_stats):
        assert per_disk_blocks[disk] == stats.blocks
        assert per_disk_service[disk] == pytest.approx(stats.busy_ms)
    overall = request_statistics(metrics.request_traces)
    assert overall.count == metrics.fetch_requests


def test_queue_wait_totals_agree(metrics):
    traced_wait = sum(t.queue_wait_ms for t in metrics.request_traces)
    drive_wait = sum(s.queue_wait_ms for s in metrics.drive_stats)
    assert traced_wait == pytest.approx(drive_wait)


def test_concurrency_timeline_integral_matches_busy_time(metrics):
    """Integral of the busy-disk step function = total drive busy ms."""
    buckets = 200
    means = downsample(metrics.concurrency_timeline, buckets,
                       metrics.total_time_ms)
    integral = sum(means) * metrics.total_time_ms / buckets
    total_busy = sum(s.busy_ms for s in metrics.drive_stats)
    assert integral == pytest.approx(total_busy, rel=1e-6)


def test_average_concurrency_consistent_with_timeline(metrics):
    """Tracker's average (over active time) >= timeline mean (over all
    time), equal when the array is never fully idle."""
    buckets = 400
    means = downsample(metrics.concurrency_timeline, buckets,
                       metrics.total_time_ms)
    overall_mean = sum(means) / buckets
    assert metrics.average_concurrency >= overall_mean - 1e-6
    assert metrics.average_concurrency == pytest.approx(
        overall_mean / max(metrics.disk_busy_fraction, 1e-12), rel=0.01
    )


def test_cache_timeline_ends_empty(metrics):
    """After the merge every block has been depleted: occupancy 0."""
    assert metrics.cache_timeline[-1][1] == 0.0


def test_cache_timeline_bounded_by_capacity(metrics):
    assert all(0 <= v <= 120 for _t, v in metrics.cache_timeline)
    assert max(v for _t, v in metrics.cache_timeline) == (
        metrics.cache_peak_occupancy
    )


def test_demand_situations_bounded_by_depletions(metrics):
    assert metrics.demand_situations <= metrics.blocks_depleted
    assert (
        metrics.fetch_decisions + metrics.demand_hits_in_flight
        == metrics.demand_situations
    )


def test_stall_time_bounded_by_total(metrics):
    assert 0 <= metrics.cpu_stall_ms <= metrics.total_time_ms
