"""Acceptance pins for the fault subsystem, through the public surfaces.

* ``repro run --faults`` with the bundled zero-fault plan reproduces
  the baseline numbers exactly;
* the bundled fail-slow plan strictly lengthens the merge for both
  prefetching strategies;
* the ``ext-degradation`` experiment and the fault CLI flags work end
  to end.
"""

import json
import re
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.api import configure
from repro.core.simulator import MergeSimulation
from repro.faults.plan import load_plan

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "fault_plans"


def _run(strategy: PrefetchStrategy, plan=None):
    config = SimulationConfig(
        num_runs=10,
        num_disks=5,
        strategy=strategy,
        prefetch_depth=5,
        blocks_per_run=60,
        trials=2,
        fault_plan=plan,
    )
    return MergeSimulation(config).run()


@pytest.mark.parametrize(
    "strategy", [PrefetchStrategy.INTRA_RUN, PrefetchStrategy.INTER_RUN]
)
def test_bundled_plans_zero_is_baseline_fail_slow_is_strictly_slower(strategy):
    baseline = _run(strategy)
    zero = _run(strategy, load_plan(EXAMPLES / "zero-faults.json"))
    slow = _run(strategy, load_plan(EXAMPLES / "one-slow-disk.json"))
    assert zero.to_dict() == baseline.to_dict()
    assert slow.total_time_s.mean > baseline.total_time_s.mean


def test_cli_run_with_zero_fault_plan_matches_plain_run(tmp_path, capsys):
    args = ["run", "ext-adaptive-depth", "--quick", "--trials", "1",
            "--blocks", "40"]
    assert main(args) == 0
    plain_out = capsys.readouterr().out
    assert main(args + ["--faults", str(EXAMPLES / "zero-faults.json")]) == 0
    faulted_out = capsys.readouterr().out
    # Identical report apart from the fault-plan banner line and the
    # wall-clock "finished in X.Xs" stamp, which races the scheduler.
    banner, _, rest = faulted_out.partition("\n")
    assert "zero-faults.json" in banner
    scrub = re.compile(r"finished in \d+\.\d+s")
    assert scrub.sub("finished", rest) == scrub.sub("finished", plain_out)


def test_cli_simulate_accepts_fault_plan(capsys):
    code = main([
        "simulate", "-k", "6", "-D", "3", "--strategy", "inter-run",
        "-N", "3", "--blocks", "30", "--trials", "1",
        "--faults", str(EXAMPLES / "one-slow-disk.json"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "faults=T0/S1/O0" in out
    assert "fault stall" in out


def test_cli_sweep_fault_rate_axis(tmp_path, capsys):
    code = main([
        "sweep", "-k", "6", "-D", "3", "--strategy", "intra-run",
        "-N", "3", "--blocks", "30", "--trials", "1",
        "--fault-rate", "0.0,0.3",
        "--cache-dir", str(tmp_path / "cache"),
        "--name", "fault-rate-test", "--quiet",
        "--export", str(tmp_path / "sweep.json"),
    ])
    assert code == 0
    exported = json.loads((tmp_path / "sweep.json").read_text())
    descriptions = [cell["config_description"] for cell in exported["cells"]]
    assert len(descriptions) == 2
    # The faulted cell announces its plan; the 0.0 cell is the baseline.
    assert sum("faults=T1" in d for d in descriptions) == 1


@pytest.mark.parametrize("command", [
    ["run", "ext-adaptive-depth", "--quick"],
    ["simulate", "-k", "6", "-D", "3", "--strategy", "inter-run",
     "-N", "3", "--blocks", "30", "--trials", "1"],
    ["sweep", "-k", "6", "-D", "3", "--strategy", "intra-run",
     "-N", "3", "--no-cache", "--quiet"],
])
def test_cli_bad_fault_plan_reports_cleanly(tmp_path, capsys, command):
    """Missing or malformed plan files: ``error: ...``, exit 2, no traceback."""
    missing = tmp_path / "nope.json"
    assert main(command + ["--faults", str(missing)]) == 2
    assert "error: cannot load fault plan" in capsys.readouterr().err
    malformed = tmp_path / "bad.json"
    malformed.write_text('{"transients": [{"drive": 0, "probability": 7}]}')
    assert main(command + ["--faults", str(malformed)]) == 2
    assert "error: cannot load fault plan" in capsys.readouterr().err


def test_experiment_registered_and_runs():
    from repro.experiments import Scale, get_experiment

    experiment = get_experiment("ext-degradation")
    scale = Scale(trials=1, blocks_per_run=30, sweep_density=0.34)
    result = experiment.run(scale)
    assert result.ok
    slow_table = result.tables[0]
    baseline = slow_table.rows[0]
    worst = slow_table.rows[-1]
    assert baseline[0] == 1.0  # severity axis starts at the healthy point
    # Time strictly grows with severity for both strategies.
    assert worst[1] > baseline[1]
    assert worst[3] > baseline[3]


def test_override_applies_to_experiment_configs():
    from repro.experiments import Scale, get_experiment

    scale = Scale(trials=1, blocks_per_run=30, sweep_density=0.2)
    experiment = get_experiment("ext-adaptive-depth")
    plain = experiment.run(scale)
    with configure(fault_plan=load_plan(EXAMPLES / "one-slow-disk.json")):
        faulted = experiment.run(scale)
    assert plain.ok and faulted.ok
    assert plain.render() != faulted.render()
