"""Integration: the simulator must land on the paper's closed forms.

These run the real simulator at full paper scale (1000-block runs) with
a reduced trial count and check agreement with the analytical estimates
in each formula's regime of validity -- the paper's own validation
methodology.
"""

import pytest

from repro.analysis.predictions import predict
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation


def run_and_predict(**kwargs):
    config = SimulationConfig(trials=2, base_seed=7, **kwargs)
    simulated = MergeSimulation(config).run().total_time_s.mean
    estimated = predict(config).total_s
    return simulated, estimated


@pytest.mark.slow
def test_no_prefetch_single_disk_k25():
    simulated, estimated = run_and_predict(
        num_runs=25, num_disks=1, strategy=PrefetchStrategy.NONE
    )
    assert simulated == pytest.approx(estimated, rel=0.02)
    assert simulated == pytest.approx(357.2, rel=0.02)


@pytest.mark.slow
def test_no_prefetch_multi_disk_k25_d5():
    simulated, estimated = run_and_predict(
        num_runs=25, num_disks=5, strategy=PrefetchStrategy.NONE
    )
    assert simulated == pytest.approx(estimated, rel=0.02)
    assert simulated == pytest.approx(279.0, rel=0.02)


@pytest.mark.slow
def test_intra_run_single_disk_n10():
    simulated, estimated = run_and_predict(
        num_runs=25, num_disks=1,
        strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=10,
    )
    assert simulated == pytest.approx(estimated, rel=0.02)
    assert simulated == pytest.approx(81.8, rel=0.02)


@pytest.mark.slow
def test_intra_run_multi_disk_synchronized():
    simulated, estimated = run_and_predict(
        num_runs=25, num_disks=5,
        strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=10,
        synchronized=True,
    )
    assert simulated == pytest.approx(estimated, rel=0.02)


@pytest.mark.slow
def test_inter_run_synchronized_17_6s():
    simulated, estimated = run_and_predict(
        num_runs=25, num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=10,
        cache_capacity=1200, synchronized=True,
    )
    assert simulated == pytest.approx(estimated, rel=0.03)
    assert simulated == pytest.approx(17.6, rel=0.03)


@pytest.mark.slow
def test_unsync_intra_run_concurrency_near_urn_prediction():
    config = SimulationConfig(
        num_runs=25, num_disks=5,
        strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=30,
        trials=2, base_seed=7,
    )
    result = MergeSimulation(config).run()
    # Urn game predicts 2.51 concurrent disks asymptotically; at N=30
    # the simulation should be in its neighbourhood.
    assert result.average_concurrency.mean == pytest.approx(2.51, rel=0.15)
    # And the time should sit between the asymptote and the sync time.
    assert 23.4 * 0.9 < result.total_time_s.mean < 58.85


@pytest.mark.slow
def test_inter_run_unsync_approaches_transfer_bound():
    config = SimulationConfig(
        num_runs=25, num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=50,
        cache_capacity=5000, trials=2, base_seed=7,
    )
    result = MergeSimulation(config).run()
    bound = 10.25
    # Paper simulated 12.2s at N=50: above the bound but within ~25%.
    assert bound < result.total_time_s.mean < bound * 1.35


@pytest.mark.slow
def test_strategy_ordering_matches_paper():
    """The paper's qualitative conclusion: inter > intra > none."""
    kwargs = dict(num_runs=25, num_disks=5)
    none, _ = run_and_predict(strategy=PrefetchStrategy.NONE, **kwargs)
    intra, _ = run_and_predict(
        strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=10, **kwargs
    )
    config = SimulationConfig(
        strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=10,
        trials=2, base_seed=7, **kwargs,
    )
    inter = MergeSimulation(config).run().total_time_s.mean
    assert inter < intra < none
    # Superlinear speedup over the single-disk baseline (paper's claim).
    single, _ = run_and_predict(num_runs=25, num_disks=1,
                                strategy=PrefetchStrategy.NONE)
    assert single / inter > 5  # more than D-fold
