"""Integration: the random-depletion model vs real merge traces.

The paper justifies modeling the merge as uniform random block
depletion.  These tests run a real record-level merge, feed its actual
depletion trace through the I/O simulator, and check (a) agreement with
the random model for independent runs, (b) sharp divergence for
correlated data -- the boundary of the model's validity.
"""

import pytest

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.mergesort.external import ExternalMergesort, trace_driven_metrics
from repro.mergesort.records import make_records
from repro.workloads import generators

K_RUNS = 10
BLOCKS_PER_RUN = 80
RECORDS_PER_BLOCK = 16
MEMORY = BLOCKS_PER_RUN * RECORDS_PER_BLOCK
TOTAL = K_RUNS * MEMORY


def config(**kwargs):
    defaults = dict(
        num_runs=K_RUNS,
        num_disks=5,
        strategy=PrefetchStrategy.INTER_RUN,
        prefetch_depth=5,
        cache_capacity=K_RUNS * 5 * 4,
        blocks_per_run=BLOCKS_PER_RUN,
        trials=2,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def trace_time(keys) -> float:
    sorter = ExternalMergesort(
        memory_records=MEMORY, records_per_block=RECORDS_PER_BLOCK
    )
    stats = sorter.sort(make_records(keys))
    return trace_driven_metrics(stats, config()).total_time_s


@pytest.fixture(scope="module")
def random_model_time() -> float:
    return MergeSimulation(config()).run().total_time_s.mean


@pytest.mark.slow
def test_uniform_runs_match_random_model(random_model_time):
    measured = trace_time(generators.uniform_keys(TOTAL, seed=21))
    assert measured == pytest.approx(random_model_time, rel=0.10)


@pytest.mark.slow
def test_gaussian_runs_match_random_model(random_model_time):
    measured = trace_time(generators.gaussian_keys(TOTAL, seed=22))
    assert measured == pytest.approx(random_model_time, rel=0.10)


@pytest.mark.slow
def test_nearly_sorted_data_breaks_the_model(random_model_time):
    measured = trace_time(generators.nearly_sorted_keys(TOTAL, seed=23))
    assert measured > random_model_time * 2


@pytest.mark.slow
def test_trace_depletion_interleave_matches_model():
    """The real uniform-key merge's trace statistics look like the
    random process's."""
    from repro.workloads.depletion import DepletionTrace, trace_statistics

    sorter = ExternalMergesort(
        memory_records=MEMORY, records_per_block=RECORDS_PER_BLOCK
    )
    stats = sorter.sort(make_records(generators.uniform_keys(TOTAL, seed=24)))
    real = trace_statistics(
        DepletionTrace.from_sequence(stats.final_depletion_trace, K_RUNS)
    )
    model = trace_statistics(DepletionTrace.random(K_RUNS, BLOCKS_PER_RUN, seed=25))
    # Known model difference: the random process repeats a run with
    # probability 1/k, while a real merge essentially never depletes two
    # consecutive blocks of one run (it would need records_per_block
    # consecutive minima from that run).  So the real interleave factor
    # sits at ~1.0, at or slightly above the model's (k-1)/k.
    assert model["interleave_factor"] <= real["interleave_factor"] <= 1.0
    assert real["interleave_factor"] == pytest.approx(
        model["interleave_factor"], abs=0.15
    )
    assert real["mean_move_distance"] == pytest.approx(
        model["mean_move_distance"], rel=0.2
    )
