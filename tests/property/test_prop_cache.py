"""Property-based tests: cache accounting invariants under random

operation sequences.  The cache must conserve space exactly and keep
every per-run zone consistent no matter how reserve / arrive / deplete
interleave."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import BlockCache, CacheAccountingError
from repro.sim import Simulator


@st.composite
def cache_scenarios(draw):
    runs = draw(st.integers(min_value=1, max_value=5))
    blocks_per_run = draw(st.integers(min_value=1, max_value=20))
    capacity = draw(st.integers(min_value=runs, max_value=80))
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["reserve", "arrive", "deplete"]),
                st.integers(min_value=0, max_value=runs - 1),
                st.integers(min_value=1, max_value=6),
            ),
            max_size=60,
        )
    )
    return runs, blocks_per_run, capacity, operations


@given(cache_scenarios())
@settings(max_examples=200, deadline=None)
def test_invariants_hold_under_any_legal_sequence(scenario):
    runs, blocks_per_run, capacity, operations = scenario
    sim = Simulator()
    cache = BlockCache(sim, capacity=capacity, runs=runs,
                       blocks_per_run=blocks_per_run)
    for op, run, amount in operations:
        state = cache.runs[run]
        try:
            if op == "reserve":
                cache.reserve(run, amount)
            elif op == "arrive":
                for _ in range(min(amount, state.in_flight)):
                    cache.block_arrived(run, state.next_deplete + state.cached)
            else:
                for _ in range(min(amount, state.cached)):
                    cache.deplete(run)
        except CacheAccountingError:
            # Illegal operations must be rejected *without* corrupting
            # the accounting; check() below proves it.
            pass
        cache.check()
    # Global conservation after the dust settles.
    held = sum(s.cached + s.in_flight for s in cache.runs)
    assert held + cache.free == capacity
    assert 0 <= cache.min_free <= capacity


@given(cache_scenarios())
@settings(max_examples=100, deadline=None)
def test_depletion_indices_strictly_increasing(scenario):
    runs, blocks_per_run, capacity, operations = scenario
    sim = Simulator()
    cache = BlockCache(sim, capacity=capacity, runs=runs,
                       blocks_per_run=blocks_per_run)
    last_depleted = {run: -1 for run in range(runs)}
    for op, run, amount in operations:
        state = cache.runs[run]
        try:
            if op == "reserve":
                cache.reserve(run, amount)
            elif op == "arrive":
                for _ in range(min(amount, state.in_flight)):
                    cache.block_arrived(run, state.next_deplete + state.cached)
            else:
                for _ in range(min(amount, state.cached)):
                    index = cache.deplete(run)
                    assert index == last_depleted[run] + 1
                    last_depleted[run] = index
        except CacheAccountingError:
            pass


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=30),
)
@settings(max_examples=50, deadline=None)
def test_full_lifecycle_returns_all_space(runs, blocks_per_run):
    """Fetch and deplete every block of every run: cache ends empty."""
    sim = Simulator()
    capacity = runs * max(2, blocks_per_run // 2 + 1)
    cache = BlockCache(sim, capacity=capacity, runs=runs,
                       blocks_per_run=blocks_per_run)
    for run in range(runs):
        state = cache.runs[run]
        while not state.finished:
            chunk = min(blocks_per_run - state.next_fetch, cache.free, 3)
            if chunk > 0:
                cache.reserve(run, chunk)
                for _ in range(chunk):
                    cache.block_arrived(run, state.next_deplete + state.cached)
            while state.cached:
                cache.deplete(run)
    assert cache.free == capacity
    cache.check()
