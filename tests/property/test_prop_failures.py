"""Failure injection: errors must surface cleanly, never corrupt state.

The simulation is built from cooperating processes; a fault inside any
of them (a bad depletion source, a broken address resolver, a failed
event) must propagate to the caller as an exception -- not hang the
event loop or silently produce a wrong result.
"""

import pytest

from repro.core.cache import CacheAccountingError
from repro.core.merge_sim import MergeTrial
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.sim import AllOf, Event, ProcessFailure, Simulator


def config(**kwargs):
    defaults = dict(
        num_runs=4, num_disks=2, blocks_per_run=20, trials=1,
        strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=2,
    )
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def test_depletion_source_exhausting_early_raises():
    short_source = iter([0, 1])  # far fewer than 80 blocks
    with pytest.raises((RuntimeError, StopIteration, ProcessFailure)):
        MergeTrial(config(), seed=1, depletion_source=short_source).run()


def test_depletion_source_raising_mid_merge_propagates():
    def poisoned():
        yield 0
        yield 1
        raise ValueError("injected fault")

    with pytest.raises((ValueError, ProcessFailure)) as excinfo:
        MergeTrial(config(), seed=1, depletion_source=poisoned()).run()
    # The injected fault is the root cause, not some secondary error.
    exc = excinfo.value
    while exc.__cause__ is not None:
        exc = exc.__cause__
    assert isinstance(exc, ValueError)


def test_depletion_source_repeating_finished_run_raises():
    # Run 0 has 20 blocks; the 21st depletion of it must be rejected.
    bad = iter([0] * 21 + [1] * 60)
    with pytest.raises(RuntimeError, match="finished/unknown"):
        MergeTrial(config(), seed=1, depletion_source=bad).run()


def test_broken_address_resolver_surfaces_process_failure():
    trial = MergeTrial(config(), seed=1)

    def broken(request):
        raise OSError("disk controller fault")

    for drive in trial.drives:
        drive._address_of = broken
    with pytest.raises(Exception) as excinfo:
        trial.run()
    exc = excinfo.value
    while exc.__cause__ is not None:
        exc = exc.__cause__
    assert isinstance(exc, OSError)


def test_cache_misuse_detected_not_silently_absorbed():
    trial = MergeTrial(config(), seed=1)
    trial.cache.preload(0, 1)
    with pytest.raises(CacheAccountingError):
        trial.cache.block_arrived(0, 0)  # nothing in flight


def test_failed_event_propagates_through_allof_to_process():
    sim = Simulator()
    good = sim.timeout(1.0)
    bad = Event(sim)
    bad.fail(ConnectionError("link down"), delay=2.0)
    caught = []

    def waiter():
        try:
            yield AllOf(sim, [good, bad])
        except ConnectionError as exc:
            caught.append(exc)

    sim.process(waiter())
    sim.run()
    assert len(caught) == 1


def test_run_raises_if_merge_process_dies():
    """MergeTrial.run re-raises rather than returning bogus metrics."""
    source = iter([99])  # invalid run id
    with pytest.raises(RuntimeError):
        MergeTrial(config(), seed=1, depletion_source=source).run()


def test_state_not_reusable_after_failure():
    """A trial whose process failed must not report completion."""
    trial = MergeTrial(config(), seed=1, depletion_source=iter([0]))
    with pytest.raises(Exception):
        trial.run()
    assert trial._blocks_depleted < trial.config.total_blocks
