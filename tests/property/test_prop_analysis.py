"""Property-based tests for the analytical models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.iotime import (
    intra_run_multi_disk_block_ms,
    intra_run_single_disk_block_ms,
    no_prefetch_multi_disk_block_ms,
    no_prefetch_single_disk_block_ms,
)
from repro.analysis.seek_model import SeekDistanceModel
from repro.analysis.urn_game import (
    expected_concurrency,
    round_length_pmf,
    survival_probabilities,
)
from repro.core.parameters import DiskParameters

ks = st.integers(min_value=1, max_value=200)
ds = st.integers(min_value=1, max_value=100)
ns = st.integers(min_value=1, max_value=100)
ms = st.floats(min_value=0.1, max_value=100.0)


@given(ks)
@settings(max_examples=100, deadline=None)
def test_seek_pmf_is_distribution(k):
    model = SeekDistanceModel(k)
    values = [model.pmf(i) for i in model.support()]
    assert all(v >= 0 for v in values)
    assert math.isclose(sum(values), 1.0, rel_tol=1e-9)


@given(ks)
@settings(max_examples=100, deadline=None)
def test_seek_expectation_consistent(k):
    model = SeekDistanceModel(k)
    direct = sum(i * model.pmf(i) for i in model.support())
    assert math.isclose(model.expected_moves(), direct, rel_tol=1e-9)
    assert model.expected_moves() <= k / 3


@given(ds)
@settings(max_examples=100, deadline=None)
def test_urn_survival_is_decreasing_probability_chain(d):
    q = survival_probabilities(d)
    assert q[0] == 1.0
    assert all(0.0 <= value <= 1.0 for value in q)
    assert all(q[i] >= q[i + 1] for i in range(len(q) - 1))
    pmf = round_length_pmf(d)
    assert math.isclose(sum(pmf), 1.0, rel_tol=1e-9)


@given(ds)
@settings(max_examples=100, deadline=None)
def test_urn_concurrency_bounds(d):
    expected = expected_concurrency(d)
    assert 1.0 <= expected <= d
    # sqrt(pi*D/2) is an upper envelope up to the -1/3 correction.
    assert expected <= math.sqrt(math.pi * d / 2) + 1.0


@given(ks, ms, ns)
@settings(max_examples=100, deadline=None)
def test_intra_run_time_decreases_in_n(k, m, n):
    disk = DiskParameters()
    base = intra_run_single_disk_block_ms(k, m, n, disk)
    deeper = intra_run_single_disk_block_ms(k, m, n + 1, disk)
    assert deeper <= base + 1e-12
    assert deeper >= disk.transfer_ms_per_block


@given(ks, ms, ds)
@settings(max_examples=100, deadline=None)
def test_multi_disk_time_decreases_in_d(k, m, d):
    disk = DiskParameters()
    base = no_prefetch_multi_disk_block_ms(k, m, d, disk)
    wider = no_prefetch_multi_disk_block_ms(k, m, d + 1, disk)
    assert wider <= base + 1e-12


@given(ks, ms)
@settings(max_examples=100, deadline=None)
def test_single_disk_formulas_agree_at_unit_parameters(k, m):
    disk = DiskParameters()
    assert math.isclose(
        no_prefetch_single_disk_block_ms(k, m, disk),
        intra_run_single_disk_block_ms(k, m, 1, disk),
        rel_tol=1e-12,
    )
    assert math.isclose(
        no_prefetch_single_disk_block_ms(k, m, disk),
        no_prefetch_multi_disk_block_ms(k, m, 1, disk),
        rel_tol=1e-12,
    )
    assert math.isclose(
        intra_run_multi_disk_block_ms(k, m, 1, 1, disk),
        no_prefetch_single_disk_block_ms(k, m, disk),
        rel_tol=1e-12,
    )


@given(ks, ms, ns, ds)
@settings(max_examples=100, deadline=None)
def test_block_time_never_below_transfer_share(k, m, n, d):
    disk = DiskParameters()
    tau = intra_run_multi_disk_block_ms(k, m, n, d, disk)
    assert tau >= disk.transfer_ms_per_block - 1e-12
