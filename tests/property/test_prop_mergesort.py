"""Property-based tests for the mergesort substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mergesort.external import ExternalMergesort
from repro.mergesort.merge import BlockedRun, merge_runs
from repro.mergesort.records import is_sorted, make_records
from repro.mergesort.runs import (
    form_runs_memory_sort,
    form_runs_replacement_selection,
)
from repro.mergesort.tournament import LoserTree, heap_merge

keys_lists = st.lists(st.integers(min_value=-1000, max_value=1000), max_size=80)


@given(st.lists(keys_lists, min_size=1, max_size=8))
@settings(max_examples=150, deadline=None)
def test_loser_tree_equals_heapq_merge(sources):
    sorted_sources = [sorted(source) for source in sources]
    expected = list(heap_merge([list(s) for s in sorted_sources]))
    assert list(LoserTree(sorted_sources)) == expected


@given(keys_lists.filter(bool), st.integers(min_value=1, max_value=20))
@settings(max_examples=150, deadline=None)
def test_memory_sort_runs_partition_input(keys, memory):
    records = make_records(keys)
    runs = form_runs_memory_sort(records, memory)
    assert sorted(r for run in runs for r in run) == sorted(records)
    for run in runs:
        assert is_sorted(run)
        assert len(run) <= memory


@given(keys_lists.filter(bool), st.integers(min_value=1, max_value=20))
@settings(max_examples=100, deadline=None)
def test_replacement_selection_runs_partition_input(keys, memory):
    records = make_records(keys)
    runs = form_runs_replacement_selection(records, memory)
    assert sorted(r for run in runs for r in run) == sorted(records)
    for run in runs:
        assert is_sorted(run)


@given(
    st.lists(keys_lists, min_size=1, max_size=6),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_traced_merge_sorts_and_traces_every_block(sources, rpb):
    runs = [
        BlockedRun.from_records(sorted(make_records(source)), rpb)
        for source in sources
    ]
    result = merge_runs(runs)
    assert is_sorted(result.records)
    assert len(result.records) == sum(len(source) for source in sources)
    assert len(result.depletion_trace) == sum(run.num_blocks for run in runs)
    for index, run in enumerate(runs):
        assert result.depletions_of(index) == run.num_blocks


@given(
    keys_lists.filter(lambda keys: len(keys) >= 1),
    st.integers(min_value=1, max_value=30),
    st.booleans(),
)
@settings(max_examples=100, deadline=None)
def test_external_sort_is_correct_for_any_input(keys, memory, replacement):
    records = make_records(keys)
    sorter = ExternalMergesort(
        memory_records=memory,
        records_per_block=4,
        replacement_selection=replacement,
    )
    stats = sorter.sort(records)  # verify=True raises on any violation
    assert len(stats.output) == len(records)


@given(keys_lists.filter(lambda keys: len(keys) >= 10))
@settings(max_examples=50, deadline=None)
def test_multi_pass_sort_equals_single_pass(keys):
    records = make_records(keys)
    single = ExternalMergesort(memory_records=3).sort(records)
    multi = ExternalMergesort(memory_records=3, max_fan_in=2).sort(records)
    assert single.output == multi.output
