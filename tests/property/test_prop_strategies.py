"""Property-based tests on fetch planners.

Whatever the cache state, a plan must: start with a demand group for
the demand run, never oversubscribe free space (conservative/greedy/
adaptive all reserve at most ``free``... except the guaranteed single
demand block), touch each disk at most once, and never fetch beyond a
run's end.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import BlockCache
from repro.core.parameters import CachePolicy, VictimSelector
from repro.core.strategies import InterRunPlanner, VictimChooser
from repro.disks.layout import RunLayout
from repro.sim import Simulator


class View:
    def __init__(self, k, d, blocks_per_run, capacity):
        sim = Simulator()
        self.layout = RunLayout(num_runs=k, num_disks=d,
                                blocks_per_run=blocks_per_run)
        self.cache = BlockCache(sim, capacity=capacity, runs=k,
                                blocks_per_run=blocks_per_run)

    def head_cylinder(self, disk):
        return 0


@st.composite
def planner_scenarios(draw):
    d = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=d, max_value=3 * d))
    blocks_per_run = draw(st.integers(min_value=2, max_value=30))
    depth = draw(st.integers(min_value=1, max_value=8))
    capacity = draw(st.integers(min_value=k + 1, max_value=k * blocks_per_run))
    policy = draw(st.sampled_from(list(CachePolicy)))
    selector = draw(st.sampled_from(list(VictimSelector)))
    adaptive = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=10_000))

    view = View(k, d, blocks_per_run, capacity)
    # Random plausible state: preload some blocks, reserve some, deplete
    # some -- then force the demand run's cache empty.
    rng = random.Random(seed)
    demand_run = rng.randrange(k)
    # The demand run is preloaded first and with >= 1 block: in the real
    # simulator a demand situation is always preceded by a depletion of
    # that run, which guarantees >= 1 free slot afterwards.
    most = min(3, blocks_per_run - 1, view.cache.free)
    view.cache.preload(demand_run, rng.randint(1, max(1, most)))
    for run in range(k):
        if run == demand_run:
            continue
        state = view.cache.runs[run]
        amount = rng.randint(0, min(3, state.on_disk, view.cache.free))
        if amount:
            view.cache.preload(run, amount)
    demand_state = view.cache.runs[demand_run]
    while demand_state.cached:
        view.cache.deplete(demand_run)
    # Demand situation requires blocks left on disk for the run.
    if demand_state.on_disk == 0:
        return None
    planner = InterRunPlanner(
        depth,
        num_disks=d,
        policy=policy,
        chooser=VictimChooser(selector, random.Random(seed + 1)),
        rng=random.Random(seed + 2),
        adaptive=adaptive,
    )
    return view, planner, demand_run


@given(planner_scenarios())
@settings(max_examples=300, deadline=None)
def test_plans_are_always_well_formed(scenario):
    if scenario is None:
        return
    view, planner, demand_run = scenario
    plan = planner.plan(view, demand_run)

    # Demand group first, for the demand run, at least one block.
    assert plan.groups[0].run == demand_run
    assert plan.groups[0].demand
    assert plan.groups[0].count >= 1

    # One group per disk at most; no group beyond a run's end.
    disks = [view.layout.disk_of_run(group.run) for group in plan.groups]
    assert len(disks) == len(set(disks))
    for group in plan.groups:
        state = view.cache.runs[group.run]
        assert group.count <= state.on_disk

    # Never oversubscribe: the whole plan must be reservable (the single
    # demand block is guaranteed by the depletion that preceded it).
    assert plan.total_blocks <= max(view.cache.free, 1)

    # The plan must actually be executable against the cache.
    for group in plan.groups:
        view.cache.reserve(group.run, group.count)
    view.cache.check()


@given(planner_scenarios())
@settings(max_examples=150, deadline=None)
def test_full_prefetch_flag_meaning(scenario):
    if scenario is None:
        return
    view, planner, demand_run = scenario
    free_before = view.cache.free
    plan = planner.plan(view, demand_run)
    if plan.full_prefetch and not planner.adaptive:
        # A full prefetch means the D*N check passed at decision time.
        assert free_before >= planner.depth * planner.num_disks
