"""Property-based tests for the file-backed sorting stack."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.io.blockio import BlockReader, BlockWriter
from repro.io.codec import RecordCodec
from repro.io.filesort import FileSorter, verify_sorted_file
from repro.mergesort.records import Record

keys = st.integers(min_value=-(2**40), max_value=2**40)
tags = st.integers(min_value=0, max_value=2**40)

io_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@given(key=keys, tag=tags, record_bytes=st.sampled_from([16, 32, 64, 128]))
@settings(max_examples=150, deadline=None)
def test_codec_roundtrip_any_record(key, tag, record_bytes):
    codec = RecordCodec(record_bytes=record_bytes)
    record = Record(key=key, tag=tag)
    assert codec.decode(codec.encode(record)) == record


@given(st.lists(st.tuples(keys, tags), max_size=200))
@io_settings
def test_blockfile_roundtrip_any_records(tmp_path, pairs):
    path = tmp_path / "run.blk"
    records = [Record(key=k, tag=t) for k, t in pairs]
    with BlockWriter(path) as writer:
        writer.write_many(records)
    assert list(BlockReader(path)) == records


@given(
    st.lists(st.tuples(keys, tags), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=3),
)
@io_settings
def test_filesort_sorts_any_input(tmp_path, pairs, memory, dirs):
    input_path = tmp_path / "input.blk"
    records = [Record(key=k, tag=t) for k, t in pairs]
    with BlockWriter(input_path) as writer:
        writer.write_many(records)
    sorter = FileSorter(
        memory_records=memory,
        temp_dirs=[tmp_path / f"d{i}" for i in range(dirs)],
    )
    output_path = tmp_path / "out.blk"
    stats = sorter.sort_file(input_path, output_path)
    assert stats.records == len(records)
    assert verify_sorted_file(output_path) == len(records)
    assert sorted(BlockReader(input_path)) == list(BlockReader(output_path))


@given(
    st.lists(st.tuples(keys, tags), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=30),
)
@io_settings
def test_filesort_trace_accounting(tmp_path, pairs, memory):
    input_path = tmp_path / "input.blk"
    records = [Record(key=k, tag=t) for k, t in pairs]
    with BlockWriter(input_path) as writer:
        writer.write_many(records)
    sorter = FileSorter(memory_records=memory, temp_dirs=[tmp_path / "d"])
    stats = sorter.sort_file(input_path, tmp_path / "out.blk")
    assert len(stats.depletion_trace) == stats.total_run_blocks
    assert stats.runs == -(-len(records) // memory)
