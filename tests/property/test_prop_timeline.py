"""Property-based tests for timeline downsampling."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeline import downsample, render_sparkline


@st.composite
def step_functions(draw):
    """A valid step function: increasing times starting at 0."""
    n = draw(st.integers(min_value=1, max_value=20))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=50.0),
            min_size=n - 1,
            max_size=n - 1,
        )
    )
    times = [0.0]
    for gap in gaps:
        times.append(times[-1] + gap)
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    end = times[-1] + draw(st.floats(min_value=0.1, max_value=50.0))
    return list(zip(times, values)), end


@given(step_functions(), st.integers(min_value=1, max_value=50))
@settings(max_examples=200, deadline=None)
def test_downsample_conserves_time_weighted_mean(timeline_and_end, buckets):
    """Mean of bucket means equals the overall time-weighted mean."""
    timeline, end = timeline_and_end
    means = downsample(timeline, buckets, end)
    overall = sum(means) / buckets
    # Direct integral of the step function over [0, end].
    integral = 0.0
    points = list(timeline) + [(end, timeline[-1][1])]
    for (start, value), (nxt, _v) in zip(points, points[1:]):
        hi = min(nxt, end)
        if hi > start:
            integral += value * (hi - start)
    expected = integral / end
    assert overall == _approx(expected)


def _approx(value):
    import pytest

    return pytest.approx(value, rel=1e-6, abs=1e-9)


@given(step_functions(), st.integers(min_value=1, max_value=50))
@settings(max_examples=100, deadline=None)
def test_downsample_bounded_by_extremes(timeline_and_end, buckets):
    timeline, end = timeline_and_end
    means = downsample(timeline, buckets, end)
    low = min(v for _t, v in timeline)
    high = max(v for _t, v in timeline)
    for mean in means:
        assert low - 1e-9 <= mean <= high + 1e-9


@given(step_functions())
@settings(max_examples=100, deadline=None)
def test_sparkline_length_matches_input(timeline_and_end):
    timeline, end = timeline_and_end
    means = downsample(timeline, 30, end)
    line = render_sparkline(means, maximum=101.0)
    assert len(line) == 30
