"""Property-based tests on whole simulation trials.

Random small configurations must always complete the merge, deplete the
exact block count, fetch every non-preloaded block exactly once, and
respect timing lower bounds -- regardless of strategy, cache size, or
synchronization.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge_sim import MergeTrial
from repro.core.parameters import (
    CachePolicy,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
)
from repro.disks.drive import QueueDiscipline


@st.composite
def small_configs(draw):
    num_runs = draw(st.integers(min_value=1, max_value=8))
    num_disks = draw(st.integers(min_value=1, max_value=4))
    blocks_per_run = draw(st.integers(min_value=1, max_value=25))
    strategy = draw(st.sampled_from(list(PrefetchStrategy)))
    depth = draw(st.integers(min_value=1, max_value=6))
    synchronized = draw(st.booleans())
    policy = draw(st.sampled_from(list(CachePolicy)))
    selector = draw(st.sampled_from(list(VictimSelector)))
    discipline = draw(st.sampled_from(list(QueueDiscipline)))
    cpu = draw(st.sampled_from([0.0, 0.3]))
    write_disks = draw(st.sampled_from([0, 0, 0, 1, 2]))
    config = SimulationConfig(
        num_runs=num_runs,
        num_disks=num_disks,
        strategy=strategy,
        prefetch_depth=depth,
        blocks_per_run=blocks_per_run,
        synchronized=synchronized,
        cache_policy=policy,
        victim_selector=selector,
        queue_discipline=discipline,
        cpu_ms_per_block=cpu,
        write_disks=write_disks,
        trials=1,
    )
    # Optionally squeeze the cache (but never below the legal minimum).
    if draw(st.booleans()):
        extra = draw(st.integers(min_value=0, max_value=20))
        config = SimulationConfig(
            **{
                **config.__dict__,
                "cache_capacity": config.minimum_cache_capacity + extra,
            }
        )
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return config, seed


@given(small_configs())
@settings(max_examples=120, deadline=None)
def test_every_configuration_completes(config_and_seed):
    config, seed = config_and_seed
    metrics = MergeTrial(config, seed=seed).run()
    assert metrics.blocks_depleted == config.total_blocks


@given(small_configs())
@settings(max_examples=120, deadline=None)
def test_block_fetch_conservation(config_and_seed):
    config, seed = config_and_seed
    metrics = MergeTrial(config, seed=seed).run()
    preloaded = config.num_runs * config.initial_blocks_per_run
    assert metrics.blocks_fetched == config.total_blocks - preloaded
    fetched_at_disks = sum(stats.blocks for stats in metrics.drive_stats)
    assert fetched_at_disks == metrics.blocks_fetched


@given(small_configs())
@settings(max_examples=120, deadline=None)
def test_timing_lower_bounds(config_and_seed):
    config, seed = config_and_seed
    metrics = MergeTrial(config, seed=seed).run()
    # CPU work alone is a hard floor.
    assert metrics.total_time_ms >= config.total_blocks * config.cpu_ms_per_block - 1e-6
    # Per-disk transfer time is a hard floor on the critical path.
    per_disk_transfer = [stats.transfer_ms for stats in metrics.drive_stats]
    if per_disk_transfer:
        assert metrics.total_time_ms >= max(per_disk_transfer) - 1e-6


@given(small_configs())
@settings(max_examples=80, deadline=None)
def test_success_ratio_and_concurrency_in_range(config_and_seed):
    config, seed = config_and_seed
    metrics = MergeTrial(config, seed=seed).run()
    assert 0.0 <= metrics.success_ratio <= 1.0
    assert 0.0 <= metrics.average_concurrency <= config.num_disks + 1e-9
    assert metrics.peak_concurrency <= config.num_disks


@given(small_configs())
@settings(max_examples=60, deadline=None)
def test_determinism(config_and_seed):
    config, seed = config_and_seed
    first = MergeTrial(config, seed=seed).run()
    second = MergeTrial(config, seed=seed).run()
    assert first.total_time_ms == second.total_time_ms
    assert first.fetch_requests == second.fetch_requests
    assert first.full_prefetch_decisions == second.full_prefetch_decisions
