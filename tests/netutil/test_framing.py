"""HTTP/1.1 framing edge cases for :mod:`repro.netutil`.

The serve and dist suites exercise the happy path through real
sockets; these tests pin the degenerate framings both servers must
survive — truncated headers, oversize bodies, resets mid-body — by
feeding an ``asyncio.StreamReader`` directly.
"""

import asyncio

import pytest

from repro.netutil import (
    REQUEST_READ_ERRORS,
    method_not_allowed,
    read_http_request,
    write_json_response,
)


def _read(payload: bytes, *, max_body_bytes: int = 1024, eof: bool = True):
    """Run ``read_http_request`` against a reader holding ``payload``."""
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        if eof:
            reader.feed_eof()
        return await read_http_request(reader, max_body_bytes=max_body_bytes)

    return asyncio.run(run())


def test_well_formed_request_roundtrips():
    request = _read(
        b"POST /v1/simulate HTTP/1.1\r\n"
        b"Content-Type: application/json\r\n"
        b"Content-Length: 9\r\n"
        b"\r\n"
        b'{"k": 25}'
    )
    method, target, headers, body = request
    assert (method, target) == ("POST", "/v1/simulate")
    assert headers["content-length"] == "9"
    assert body == b'{"k": 25}'


def test_empty_request_line_means_peer_went_away():
    assert _read(b"") is None
    assert _read(b"\r\n") is None


def test_malformed_request_line_raises_value_error():
    with pytest.raises(ValueError, match="malformed request line"):
        _read(b"GET /path\r\n\r\n")
    # ValueError is in the drop-the-connection set both servers catch.
    assert ValueError in REQUEST_READ_ERRORS


def test_oversize_body_returns_none_body_for_413():
    request = _read(
        b"POST /v1/simulate HTTP/1.1\r\n"
        b"Content-Length: 4096\r\n"
        b"\r\n" + b"x" * 4096,
        max_body_bytes=64,
    )
    method, target, headers, body = request
    # Method/target/headers survive so the handler can answer 413
    # without ever buffering the payload.
    assert (method, target) == ("POST", "/v1/simulate")
    assert headers["content-length"] == "4096"
    assert body is None


def test_truncated_headers_terminate_instead_of_hanging():
    # The peer dies mid-header: the parser must hit EOF and return,
    # never wait for a blank line that will not come.
    request = _read(
        b"GET /v1/metricz HTTP/1.1\r\n"
        b"X-Partial-Head"
    )
    method, target, _headers, body = request
    assert (method, target) == ("GET", "/v1/metricz")
    assert body == b""


def test_connection_reset_mid_body_raises_a_handled_error():
    with pytest.raises(asyncio.IncompleteReadError):
        _read(
            b"POST /v1/simulate HTTP/1.1\r\n"
            b"Content-Length: 100\r\n"
            b"\r\n"
            b"only 20 bytes arrive"
        )
    assert asyncio.IncompleteReadError in REQUEST_READ_ERRORS


def test_header_names_fold_to_lower_case_and_values_strip():
    request = _read(
        b"GET / HTTP/1.1\r\n"
        b"X-MiXeD-CaSe:   padded value  \r\n"
        b"\r\n"
    )
    assert request[2]["x-mixed-case"] == "padded value"


def test_empty_content_length_value_reads_as_zero():
    request = _read(
        b"GET / HTTP/1.1\r\n"
        b"Content-Length:\r\n"
        b"\r\n"
    )
    assert request[3] == b""


class _Writer:
    """Just enough of StreamWriter for write_json_response."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(data)

    async def drain(self):
        pass


def test_json_response_wire_format():
    writer = _Writer()
    asyncio.run(write_json_response(
        writer, 413, {"error": "too-big"}, {"Retry-After": "1"}
    ))
    wire = b"".join(writer.chunks)
    head, _, body = wire.partition(b"\r\n\r\n")
    lines = head.decode("ascii").split("\r\n")
    assert lines[0] == "HTTP/1.1 413 Payload Too Large"
    assert "Connection: close" in lines
    assert "Retry-After: 1" in lines
    assert f"Content-Length: {len(body)}".encode() in wire
    assert body == b'{"error": "too-big"}'


def test_method_not_allowed_names_the_allowed_verb():
    status, body, extra = method_not_allowed("POST")
    assert status == 405
    assert extra == {"Allow": "POST"}
    assert "POST" in body["detail"]
