"""End-to-end dist campaigns over real sockets.

The acceptance bar: a coordinator + workers campaign must leave a
ResultStore *byte-identical* (same keys, same payloads modulo
wall-clock fields) to the single-host ``SweepEngine`` path, and no
crash — worker SIGKILL, heartbeat loss, duplicate completion, torn
manifest — may lose or corrupt a shard.
"""

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.dist import DistWorker
from repro.serve.client import ServeHTTPError
from repro.sweep.engine import SweepEngine
from repro.sweep.store import ResultStore
from repro.sweep.worker import execute_job

from tests.dist.conftest import SMALL_SPEC, client_for

#: Fields that record when/how fast a result was produced, not what it is.
WALL_CLOCK_FIELDS = ("saved_at", "elapsed_s")


def store_payloads(root: Path) -> dict[str, dict]:
    """Key -> stored payload with wall-clock fields stripped."""
    payloads = {}
    for path in sorted(root.rglob("*.json")):
        if path.parent.name == "campaigns":
            continue
        payload = json.loads(path.read_text())
        for field in WALL_CLOCK_FIELDS:
            payload.pop(field, None)
        payloads[payload["key"]] = payload
    return payloads


def run_workers(handle, count=2, **kwargs):
    """Run ``count`` DistWorkers in threads until the campaign ends."""
    host, port = handle.address
    workers = [
        DistWorker(host, port, worker_id=f"w{n}", poll_s=0.05, **kwargs)
        for n in range(count)
    ]
    threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "worker thread hung"
    return workers


def execute_shard(lease_body) -> list[dict]:
    """Run a granted lease's jobs exactly like a worker would."""
    results = []
    for job in lease_body["lease"]["jobs"]:
        outcome = execute_job(
            {"config": job["config"], "trial": job["trial"], "timeout_s": None}
        )
        results.append(
            {
                "index": job["index"],
                "ok": True,
                "metrics": outcome["metrics"],
                "elapsed_s": outcome["elapsed_s"],
            }
        )
    return results


def test_two_workers_byte_identical_to_single_host(
    coordinator_factory, tmp_path
):
    """The ISSUE acceptance test: dist store == single-host store."""
    ref_root = tmp_path / "ref"
    reference = SweepEngine(store=ResultStore(ref_root)).run_spec(SMALL_SPEC)

    coordinator, handle = coordinator_factory(exit_when_done=True)
    workers = run_workers(handle, count=2)

    handle.join()
    assert not handle.thread.is_alive()
    assert coordinator.aggregator.is_complete()
    assert coordinator.aggregator.failed == 0

    dist_root = coordinator.store.root
    ref_payloads = store_payloads(ref_root)
    dist_payloads = store_payloads(dist_root)
    assert sorted(ref_payloads) == sorted(dist_payloads)
    assert ref_payloads == dist_payloads  # byte-identical modulo wall clock

    # Aggregates come out in the same cell/trial order too.
    assert [c.to_dict() for c in reference.cells] == [
        c.to_dict() for c in coordinator.aggregator.result()
    ]
    # Both workers actually participated (4 jobs, shard_size=2).
    assert sum(w.stats.shards_completed for w in workers) == 2


def test_resume_settles_everything_from_cache(coordinator_factory, tmp_path):
    """Re-running a finished campaign never leases a single shard."""
    first, handle = coordinator_factory(exit_when_done=True)
    run_workers(handle, count=1)
    handle.join()

    second, handle2 = coordinator_factory(
        store=first.store, cache_dir=first.store.root, exit_when_done=True
    )
    handle2.join()  # drains immediately, no workers needed
    assert not handle2.thread.is_alive()
    assert second.aggregator.is_complete()
    assert second.aggregator.cached == len(SMALL_SPEC.jobs())
    assert second.leases.counts()["pending"] == 0


def test_resume_with_partially_written_manifest(
    coordinator_factory, tmp_path
):
    """A torn manifest (crash mid-write) must not wedge a resume."""
    cache_dir = tmp_path / "cache"
    manifest_path = cache_dir / "campaigns" / f"{SMALL_SPEC.name}.json"
    manifest_path.parent.mkdir(parents=True)
    manifest_path.write_text('{"name": "dist-test", "spec_key": "abc12')

    coordinator, handle = coordinator_factory(exit_when_done=True)
    run_workers(handle, count=2)
    handle.join()
    assert coordinator.aggregator.is_complete()
    # The manifest was rewritten whole and is valid JSON again.
    manifest = json.loads(manifest_path.read_text())
    assert all(s == "done" for s in manifest["jobs"].values())
    assert all(
        s["status"] == "done" for s in manifest["shards"].values()
    )


def test_duplicate_shard_completion_merges_idempotently(coordinator_factory):
    """Two clients complete the same shard; the merge stays single."""
    coordinator, handle = coordinator_factory(lease_ttl_s=0.2)
    slow = client_for(handle)
    fast = client_for(handle)

    granted = slow.lease("slow")
    results = execute_shard(granted)
    time.sleep(0.35)  # let the lease expire

    regrant = fast.lease("fast")  # re-issue of the same shard
    assert regrant["lease"]["shard"] == granted["lease"]["shard"]
    answer = fast.complete(regrant["lease"]["token"], results)
    assert not answer.get("duplicate")

    late = slow.complete(granted["lease"]["token"], results)
    assert late["duplicate"]

    status = slow.campaign(SMALL_SPEC.name)
    assert status["jobs"]["completed"] == len(results)
    assert status["leases"]["duplicate_total"] == 1
    assert status["shards"]["done"] == 1


def test_lease_reissued_after_heartbeat_loss(coordinator_factory):
    """A worker that stops heartbeating loses the shard, not the campaign."""
    coordinator, handle = coordinator_factory(
        lease_ttl_s=0.2, exit_when_done=True
    )
    silent = client_for(handle)
    granted = silent.lease("silent")
    time.sleep(0.35)

    with pytest.raises(ServeHTTPError) as excinfo:
        silent.heartbeat(granted["lease"]["token"])
    assert excinfo.value.status == 409

    # A real worker sweeps up the whole campaign, reclaimed shard included.
    run_workers(handle, count=1)
    handle.join()
    assert coordinator.aggregator.is_complete()
    assert coordinator.leases.expired_total >= 1


def test_sigkilled_worker_loses_no_shards(coordinator_factory):
    """SIGKILL a subprocess holding a lease; the campaign still finishes."""
    coordinator, handle = coordinator_factory(
        lease_ttl_s=0.5, exit_when_done=True
    )
    host, port = handle.address
    script = (
        "import sys, time\n"
        "from repro.dist import CoordinatorClient\n"
        f"client = CoordinatorClient({host!r}, {port})\n"
        "granted = client.lease('doomed')\n"
        "print(granted['lease']['token'], flush=True)\n"
        "time.sleep(60)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
    victim = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        token = victim.stdout.readline().strip()
        assert token.startswith("lease-")  # it holds a live lease
        victim.kill()  # SIGKILL: no cleanup, no goodbye
        victim.wait(timeout=10.0)
    finally:
        if victim.poll() is None:
            victim.kill()

    run_workers(handle, count=1)
    handle.join()
    assert coordinator.aggregator.is_complete()
    assert coordinator.aggregator.failed == 0
    assert coordinator.leases.expired_total >= 1
    assert len(coordinator.store) == len(SMALL_SPEC.jobs())


def test_campaign_status_endpoint_streams_progress(coordinator_factory):
    """GET /v1/campaigns/<name> works mid-run and rejects strangers."""
    coordinator, handle = coordinator_factory()
    client = client_for(handle)

    snapshot = client.campaign(SMALL_SPEC.name)
    assert snapshot["jobs"]["total"] == len(SMALL_SPEC.jobs())
    assert snapshot["jobs"]["completed"] == 0
    assert not snapshot["complete"]

    with pytest.raises(ServeHTTPError) as excinfo:
        client.campaign("no-such-campaign")
    assert excinfo.value.status == 404

    granted = client.lease("w0")
    client.complete(granted["lease"]["token"], execute_shard(granted))
    snapshot = client.campaign(SMALL_SPEC.name)
    assert snapshot["jobs"]["completed"] == 2  # one shard of two jobs
    assert snapshot["shards"]["done"] == 1
    handle.stop()
    assert not handle.thread.is_alive()
