"""Streaming aggregation: order-independence and partial snapshots."""

import pytest

from repro.core.simulator import MergeSimulation
from repro.dist.aggregate import CampaignAggregator
from repro.sweep.spec import SweepSpec

SPEC = SweepSpec(
    name="agg",
    base={"num_runs": 4, "blocks_per_run": 10},
    grid={"num_disks": [1, 2]},
    trials=2,
    base_seed=9,
)


def _metrics_for(aggregator):
    """Real metrics for every job (tiny configs, miliseconds each)."""
    return {
        job.index: MergeSimulation(job.config).run_trial(trial=job.trial)
        for job in aggregator.jobs
    }


def test_out_of_order_completion_matches_serial_order():
    forward = CampaignAggregator(SPEC)
    backward = CampaignAggregator(SPEC)
    results = _metrics_for(forward)
    for index in sorted(results):
        forward.record(index, results[index])
    for index in sorted(results, reverse=True):
        backward.record(index, results[index])
    assert [a.to_dict() for a in forward.result()] == [
        a.to_dict() for a in backward.result()
    ]


def test_partial_snapshot_counts_and_cells():
    aggregator = CampaignAggregator(SPEC)
    results = _metrics_for(aggregator)
    aggregator.record(0, results[0], cached=True)
    aggregator.record(3, results[3])
    snapshot = aggregator.snapshot()
    assert snapshot["campaign"] == "agg"
    assert snapshot["jobs"] == {
        "total": 4, "completed": 2, "cached": 1, "failed": 0, "in_flight": 2,
    }
    assert not snapshot["complete"]
    # Partial cells still render: cell 0 has 1 of 2 trials so far.
    assert len(snapshot["cells"]) == 2
    assert len(snapshot["cells"][0]["trials"]) == 1


def test_failures_tracked_and_complete():
    aggregator = CampaignAggregator(SPEC)
    results = _metrics_for(aggregator)
    for index in (0, 1, 2):
        aggregator.record(index, results[index])
    aggregator.record_failure(3, "ValueError: boom")
    assert aggregator.is_complete()
    assert aggregator.failed == 1
    snapshot = aggregator.snapshot()
    assert snapshot["failures"] == {"3": "ValueError: boom"}
    # A late success overrides the failure (a retried shard landed).
    aggregator.record(3, results[3])
    assert aggregator.failed == 0


def test_record_is_idempotent():
    aggregator = CampaignAggregator(SPEC)
    results = _metrics_for(aggregator)
    aggregator.record(0, results[0])
    aggregator.record(0, results[0])  # duplicate shard completion
    assert aggregator.completed == 1


def test_unknown_index_rejected():
    aggregator = CampaignAggregator(SPEC)
    with pytest.raises(KeyError):
        aggregator.record_failure(99, "nope")
