"""Shared harness for dist tests: real coordinators on ephemeral ports."""

import pytest

from repro.dist import Coordinator, CoordinatorConfig, CoordinatorClient
from repro.dist.coordinator import start_coordinator_in_thread
from repro.serve import NO_RETRY
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore

#: Small but real: 4 jobs across 2 cells, each well under a second.
SMALL_SPEC = SweepSpec(
    name="dist-test",
    base={"num_runs": 6, "blocks_per_run": 30},
    grid={"num_disks": [1, 2]},
    trials=2,
    base_seed=17,
)


class FakeClock:
    """A hand-cranked clock for deterministic lease expiry."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture
def coordinator_factory(tmp_path):
    """Start real coordinators on ephemeral ports; drain afterwards."""
    handles = []

    def start(spec=SMALL_SPEC, *, store=None, **kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("shard_size", 2)
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        if store is None:
            store = ResultStore(kwargs["cache_dir"])
        coordinator = Coordinator(
            spec, CoordinatorConfig(**kwargs), store=store
        )
        handle = start_coordinator_in_thread(coordinator)
        handles.append(handle)
        return coordinator, handle

    yield start
    for handle in handles:
        handle.stop()


def client_for(handle, **kwargs):
    """A fail-fast client (no retries unless a test opts in)."""
    host, port = handle.address
    kwargs.setdefault("retry", NO_RETRY)
    kwargs.setdefault("timeout_s", 30.0)
    return CoordinatorClient(host, port, **kwargs)
