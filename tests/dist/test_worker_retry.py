"""Worker-before-coordinator startup: first contact retries, never dies."""

import pytest

from repro.dist.worker import CONNECT_RETRY, DistWorker
from repro.serve.client import RetryPolicy, ServeError


class FlakyClient:
    """Refuses the first ``failures`` leases, then reports done."""

    def __init__(self, failures):
        self.failures = failures
        self.lease_calls = 0

    def lease(self, worker_id):
        self.lease_calls += 1
        if self.lease_calls <= self.failures:
            raise ServeError("connection refused")
        return {"status": "done"}


def make_worker(client, **kwargs):
    sleeps = []
    worker = DistWorker(
        client=client,
        sleep=sleeps.append,
        enforce_timeouts=False,
        **kwargs,
    )
    return worker, sleeps


def test_worker_retries_until_coordinator_listens():
    client = FlakyClient(failures=3)
    worker, sleeps = make_worker(client)
    stats = worker.run()
    assert client.lease_calls == 4
    assert stats.connect_retries == 3
    assert not stats.coordinator_gone
    # Capped exponential backoff, the same shape ServeClient uses.
    assert sleeps == [
        CONNECT_RETRY.backoff_for(attempt) for attempt in (1, 2, 3)
    ]
    assert sleeps == sorted(sleeps)


def test_worker_gives_up_after_the_retry_budget():
    client = FlakyClient(failures=100)
    policy = RetryPolicy(max_attempts=3, backoff_s=0.01)
    worker, sleeps = make_worker(client, connect_retry=policy)
    with pytest.raises(ServeError, match="connection refused"):
        worker.run()
    assert client.lease_calls == 3
    assert worker.stats.connect_retries == 2
    assert len(sleeps) == 2


def test_connection_loss_after_contact_is_not_retried():
    """Post-contact disappearance means the campaign finished; the
    startup retry budget must not mask it."""

    class VanishingClient:
        def __init__(self):
            self.lease_calls = 0

        def lease(self, worker_id):
            self.lease_calls += 1
            if self.lease_calls == 1:
                return {"status": "wait", "retry_after_s": 0}
            raise ServeError("connection refused")

    client = VanishingClient()
    worker, _sleeps = make_worker(client)
    stats = worker.run()
    assert stats.coordinator_gone
    assert stats.connect_retries == 0


def test_connect_retries_round_trip_through_stats():
    from repro.dist.worker import WorkerStats

    stats = WorkerStats(connect_retries=5)
    assert WorkerStats.from_dict(stats.to_dict()).connect_retries == 5
