"""Request parsing and response shaping of the dist wire protocol."""

import pytest

from repro.dist.protocol import (
    DIST_PROTOCOL_VERSION,
    DistProtocolError,
    done_body,
    granted_body,
    lease_lost_body,
    parse_complete_request,
    parse_heartbeat_request,
    parse_lease_request,
    wait_body,
)


def test_parse_lease_request():
    assert parse_lease_request({"worker": "w1"}) == "w1"


@pytest.mark.parametrize("payload", [None, [], {}, {"worker": ""},
                                     {"worker": 3}])
def test_parse_lease_request_rejects(payload):
    with pytest.raises(DistProtocolError) as excinfo:
        parse_lease_request(payload)
    assert excinfo.value.status == 400


def test_parse_heartbeat_request():
    assert parse_heartbeat_request({"token": "lease-000001"}) == "lease-000001"
    with pytest.raises(DistProtocolError):
        parse_heartbeat_request({"token": None})


def test_parse_complete_request():
    token, results = parse_complete_request({
        "token": "lease-000001",
        "results": [
            {"index": 0, "ok": True, "metrics": {}, "elapsed_s": 0.1},
            {"index": 1, "ok": False, "error": "boom"},
        ],
    })
    assert token == "lease-000001"
    assert len(results) == 2


@pytest.mark.parametrize("payload", [
    {"token": "t"},  # missing results
    {"token": "t", "results": {}},  # not a list
    {"token": "t", "results": [{"ok": True}]},  # no index
    {"token": "t", "results": [{"index": 0, "ok": True}]},  # ok, no metrics
])
def test_parse_complete_request_rejects(payload):
    with pytest.raises(DistProtocolError):
        parse_complete_request(payload)


def test_response_bodies_carry_protocol_version():
    body = granted_body("t", "shard-0000", [], ttl_s=5.0,
                        timeout_s=None, retries=1)
    assert body["protocol"] == DIST_PROTOCOL_VERSION
    assert body["lease"]["shard"] == "shard-0000"
    assert wait_body(0.5)["retry_after_s"] == 0.5
    assert done_body()["status"] == "done"
    assert lease_lost_body("gone")["error"] == "lease-lost"


def test_protocol_error_body():
    error = DistProtocolError(400, "bad-request", "nope")
    assert error.body() == {"error": "bad-request", "detail": "nope"}
