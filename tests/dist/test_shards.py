"""Shard expansion and the job wire format."""

import pytest

from repro.dist.shards import job_from_wire, job_wire, make_shards
from repro.sweep.keys import config_from_dict
from repro.sweep.spec import SweepSpec
from repro.sweep.store import compute_key

SPEC = SweepSpec(
    name="shards",
    base={"num_runs": 4, "blocks_per_run": 10},
    grid={"num_disks": [1, 2], "prefetch_depth": [1, 2]},
    trials=3,
    base_seed=5,
)


def test_shards_are_contiguous_and_cover_everything():
    jobs = SPEC.jobs()
    shards = make_shards(jobs, 5)
    flattened = [job for shard in shards for job in shard.jobs]
    assert flattened == jobs
    assert [len(s) for s in shards] == [5, 5, 2]  # 12 jobs
    assert [s.shard_id for s in shards] == [
        "shard-0000", "shard-0001", "shard-0002"
    ]


def test_sharding_is_deterministic():
    assert make_shards(SPEC.jobs(), 4) == make_shards(SPEC.jobs(), 4)


def test_shard_size_validation():
    with pytest.raises(ValueError):
        make_shards(SPEC.jobs(), 0)


def test_job_wire_round_trip_preserves_key_derivation():
    """The wire config rebuilds to the same content address."""
    for job in SPEC.jobs():
        wire = job_wire(job)
        rebuilt = job_from_wire(wire)
        config = config_from_dict(rebuilt["config"])
        assert compute_key(config, rebuilt["trial"]) == wire["key"] == job.key
        assert rebuilt["index"] == job.index
        assert rebuilt["cell"] == job.cell


def test_job_from_wire_rejects_missing_fields():
    wire = job_wire(SPEC.jobs()[0])
    del wire["key"]
    with pytest.raises(ValueError, match="key"):
        job_from_wire(wire)
