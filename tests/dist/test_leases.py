"""The lease state machine under a hand-cranked clock."""

import pytest

from repro.dist.leases import LeaseError, LeaseManager
from repro.dist.shards import make_shards
from repro.sweep.spec import SweepSpec

from tests.dist.conftest import FakeClock

SPEC = SweepSpec(
    name="leases",
    base={"num_runs": 4, "blocks_per_run": 10},
    grid={"num_disks": [1, 2]},
    trials=2,
    base_seed=3,
)


def manager(ttl_s=10.0, shard_size=2, clock=None):
    clock = clock or FakeClock()
    shards = make_shards(SPEC.jobs(), shard_size)
    return LeaseManager(shards, ttl_s=ttl_s, clock=clock), clock


def test_acquire_hands_out_shards_in_order():
    mgr, _ = manager()
    first = mgr.acquire("w1")
    second = mgr.acquire("w2")
    assert first.shard.shard_id == "shard-0000"
    assert second.shard.shard_id == "shard-0001"
    assert first.token != second.token
    assert mgr.acquire("w3") is None  # everything leased
    assert mgr.counts() == {"pending": 0, "leased": 2, "done": 0}


def test_complete_settles_and_campaign_finishes():
    mgr, _ = manager()
    tokens = [mgr.acquire("w").token for _ in range(2)]
    for token in tokens:
        shard, duplicate = mgr.complete(token)
        assert not duplicate
    assert mgr.done
    assert mgr.counts() == {"pending": 0, "leased": 0, "done": 2}


def test_expiry_returns_shard_to_front_of_pool():
    mgr, clock = manager(ttl_s=5.0)
    lease = mgr.acquire("crashed")
    clock.advance(5.1)
    records = mgr.sweep_expired()
    assert [r.shard_id for r in records] == ["shard-0000"]
    assert records[0].worker == "crashed"
    # The reclaimed shard is re-issued before untouched ones.
    reissued = mgr.acquire("w2")
    assert reissued.shard.shard_id == "shard-0000"
    assert reissued.token != lease.token
    assert mgr.expired_total == 1


def test_heartbeat_extends_ttl():
    mgr, clock = manager(ttl_s=5.0)
    lease = mgr.acquire("w1")
    clock.advance(4.0)
    renewed = mgr.heartbeat(lease.token)
    assert renewed.renewals == 1
    clock.advance(4.0)  # 8s since grant, but only 4s since renewal
    assert mgr.heartbeat(lease.token) is lease
    assert mgr.counts()["leased"] == 1


def test_heartbeat_after_expiry_is_lease_lost():
    mgr, clock = manager(ttl_s=5.0)
    lease = mgr.acquire("w1")
    clock.advance(5.1)
    with pytest.raises(LeaseError) as excinfo:
        mgr.heartbeat(lease.token)
    assert excinfo.value.code == "lease-lost"


def test_heartbeat_unknown_token():
    mgr, _ = manager()
    with pytest.raises(LeaseError) as excinfo:
        mgr.heartbeat("lease-999999")
    assert excinfo.value.code == "unknown-token"


def test_complete_with_expired_token_still_settles():
    """A worker that outlived its lease still did correct work."""
    mgr, clock = manager(ttl_s=5.0)
    lease = mgr.acquire("slow")
    clock.advance(5.1)
    shard, duplicate = mgr.complete(lease.token)
    assert not duplicate
    assert mgr.counts()["done"] == 1
    # The shard never goes back to pending after settling.
    next_lease = mgr.acquire("w2")
    assert next_lease.shard.shard_id == "shard-0001"


def test_duplicate_completion_is_idempotent():
    mgr, clock = manager(ttl_s=5.0)
    first = mgr.acquire("slow")
    clock.advance(5.1)
    second = mgr.acquire("fast")  # re-issue of the expired shard
    assert second.shard.shard_id == first.shard.shard_id
    _, duplicate = mgr.complete(second.token)
    assert not duplicate
    _, duplicate = mgr.complete(first.token)  # the zombie reports late
    assert duplicate
    assert mgr.duplicate_total == 1
    assert mgr.counts()["done"] == 1


def test_late_completion_revokes_reissued_lease():
    """The first finisher wins; the re-issued lease dies quietly."""
    mgr, clock = manager(ttl_s=5.0)
    first = mgr.acquire("slow")
    clock.advance(5.1)
    second = mgr.acquire("fast")
    _, duplicate = mgr.complete(first.token)  # zombie finishes FIRST
    assert not duplicate
    _, duplicate = mgr.complete(second.token)
    assert duplicate
    with pytest.raises(LeaseError):
        mgr.heartbeat(second.token)


def test_complete_unknown_token():
    mgr, _ = manager()
    with pytest.raises(LeaseError) as excinfo:
        mgr.complete("lease-424242")
    assert excinfo.value.code == "unknown-token"


def test_ttl_must_be_positive():
    with pytest.raises(ValueError):
        LeaseManager([], ttl_s=0.0)


def test_empty_campaign_is_done():
    mgr = LeaseManager([], ttl_s=1.0, clock=FakeClock())
    assert mgr.done
    assert mgr.acquire("w") is None
