"""RunContext/configure: the single ambient-override surface.

One context manager composes the four ambient options (backend,
fault_plan, kernel, trace); the old per-option setters and context
managers in repro.core.simulator have been removed.
"""

import pytest

from repro import api
from repro.api import UNSET, RunContext, configure
from repro.core.parameters import SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.faults.plan import FaultPlan, fail_slow_plan
from repro.obs import TraceSession


@pytest.fixture(autouse=True)
def _clean_ambient_state():
    """Every test starts and ends with no ambient overrides."""
    saved = {name: api._state[name] for name in api._FIELDS}
    api._state.update({name: None for name in api._FIELDS})
    yield
    api._state.update(saved)


def _config(**overrides):
    base = dict(num_runs=4, num_disks=2, blocks_per_run=20, trials=1)
    base.update(overrides)
    return SimulationConfig(**base)


# ---------------------------------------------------------------- basics


def test_configure_returns_run_context():
    assert isinstance(configure(kernel="fast"), RunContext)


def test_context_sets_and_restores_kernel():
    assert api.current_kernel() is None
    with configure(kernel="fast"):
        assert api.current_kernel() == "fast"
    assert api.current_kernel() is None


def test_context_sets_and_restores_fault_plan():
    plan = fail_slow_plan(drive=0, factor=2.0)
    with configure(fault_plan=plan):
        assert api.current_fault_plan() is plan
    assert api.current_fault_plan() is None


def test_options_compose_in_one_context():
    plan = FaultPlan()
    with configure(kernel="fast", fault_plan=plan, trace=True) as context:
        assert api.current_kernel() == "fast"
        assert api.current_fault_plan() is plan
        assert api.current_trace() is context.trace
    assert api.current_trace() is None


def test_unknown_option_rejected():
    with pytest.raises(TypeError):
        configure(kern="fast")


def test_set_option_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown run option"):
        api.set_option("kern", "fast")


# ------------------------------------------------------- UNSET vs None


def test_unset_options_inherit_enclosing_scope():
    with configure(kernel="fast"):
        with configure(fault_plan=FaultPlan()):
            # kernel untouched by the inner scope
            assert api.current_kernel() == "fast"
        assert api.current_kernel() == "fast"


def test_explicit_none_clears_for_the_scope():
    plan = FaultPlan()
    with configure(fault_plan=plan):
        with configure(fault_plan=None):
            assert api.current_fault_plan() is None
        assert api.current_fault_plan() is plan


def test_nested_contexts_restore_in_order():
    with configure(kernel="reference"):
        with configure(kernel="fast"):
            assert api.current_kernel() == "fast"
        assert api.current_kernel() == "reference"
    assert api.current_kernel() is None


def test_unset_sentinel_is_not_a_value():
    context = RunContext(kernel=UNSET, fault_plan=UNSET, trace=UNSET)
    with context:
        assert api.current_kernel() is None
        assert api.current_fault_plan() is None
        assert api.current_trace() is None


# ------------------------------------------------------------- tracing


def test_trace_true_creates_fresh_session():
    with configure(trace=True) as context:
        assert isinstance(context.trace, TraceSession)
        assert api.current_trace() is context.trace


def test_trace_accepts_existing_session():
    session = TraceSession(name="mine")
    with configure(trace=session) as context:
        assert context.trace is session
        assert api.current_trace() is session


def test_trace_false_disables_for_the_scope():
    with configure(trace=True):
        with configure(trace=False):
            assert api.current_trace() is None


def test_traced_simulation_records_one_trial_per_run():
    with configure(trace=True) as context:
        MergeSimulation(_config()).run()
    assert len(context.trace.trials) == 1
    assert context.trace.total_events > 0


# ------------------------------------------------- effect on simulations


def test_ambient_kernel_rewrites_config():
    config = _config()
    assert MergeSimulation(config).config.kernel == "reference"
    with configure(kernel="fast"):
        assert MergeSimulation(config).config.kernel == "fast"
    assert MergeSimulation(config).config.kernel == "reference"


def test_explicit_fault_plan_wins_over_ambient():
    pinned = _config(fault_plan=FaultPlan())
    ambient = fail_slow_plan(drive=0, factor=6.0)
    with configure(fault_plan=ambient):
        simulation = MergeSimulation(pinned)
    assert simulation.config.fault_plan is pinned.fault_plan


# -------------------------------------------------- retired shims stay gone


def test_override_shims_are_retired():
    # The deprecated per-option setters/context managers were removed
    # once RunContext/configure became the only ambient surface.  Keep
    # them gone: a reappearance would split ambient state again.
    from repro.core import simulator

    for name in (
        "set_kernel_override",
        "kernel_override",
        "set_backend_override",
        "backend_override",
        "set_fault_plan_override",
        "fault_plan_override",
    ):
        assert not hasattr(simulator, name), name
