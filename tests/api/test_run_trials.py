"""repro.api.run_trials: the one trial-execution path.

Covers the keyword-only batch API the sweep, serve and dist workers all
route through: input validation, ambient option inheritance, batch
dispatch to kernels with a registered batch runner, and per-trial
timeout enforcement.
"""

import dataclasses

import pytest

from repro import api
from repro.core.merge_sim import MergeTrial
from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.faults.plan import fail_slow_plan


def _config(**overrides):
    base = dict(
        num_runs=6,
        num_disks=2,
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=4,
        blocks_per_run=30,
        trials=1,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _reference(config: SimulationConfig, trial: int = 0):
    reference = dataclasses.replace(config, kernel="reference")
    return MergeTrial(reference, seed=reference.base_seed + trial).run()


# ---------------------------------------------------------- validation


def test_positional_only_configs():
    with pytest.raises(TypeError):
        api.run_trials([_config()], [0])  # trials must be keyword


def test_trials_length_mismatch_rejected():
    with pytest.raises(ValueError, match="trials has 2 entries"):
        api.run_trials([_config()], trials=[0, 1])


def test_depletion_sources_length_mismatch_rejected():
    with pytest.raises(ValueError, match="depletion_sources has 0"):
        api.run_trials([_config()], depletion_sources=[])


def test_empty_batch_returns_empty():
    assert api.run_trials([]) == []


# ------------------------------------------------------------- results


def test_results_in_input_order_with_seeds():
    config = _config(trials=3)
    results = api.run_trials([config] * 3, trials=[2, 0, 1])
    for metrics, trial in zip(results, [2, 0, 1]):
        assert metrics.seed == config.base_seed + trial
        assert metrics.to_dict() == _reference(config, trial).to_dict()


def test_mixed_kernels_in_one_call():
    configs = [
        _config(kernel="reference"),
        _config(kernel="fast"),
        _config(kernel="batch"),
    ]
    results = api.run_trials(configs)
    expected = _reference(_config()).to_dict()
    assert [m.to_dict() for m in results] == [expected] * 3


# ------------------------------------------------------ batch dispatch


def test_batch_kernel_groups_equal_configs(monkeypatch):
    """Equal batch-kernel configs reach the runner as one group."""
    from repro.sim import batch as batch_module

    calls = []
    real = batch_module.run_trial_batch

    def spy(config, seeds, **kwargs):
        calls.append(list(seeds))
        return real(config, seeds, **kwargs)

    monkeypatch.setattr(batch_module, "run_trial_batch", spy)
    config = _config(kernel="batch", trials=4)
    other = _config(kernel="batch", num_runs=8, trials=1)
    api.run_trials(
        [config, other, config, config], trials=[0, 0, 1, 3]
    )
    assert sorted(map(sorted, calls)) == [
        [config.base_seed],
        [config.base_seed, config.base_seed + 1, config.base_seed + 3],
    ]


def test_tracing_forces_per_trial_execution(monkeypatch):
    """An ambient trace session bypasses the (trace-less) batch tier."""
    from repro.sim import batch as batch_module

    def explode(*args, **kwargs):  # pragma: no cover - failure branch
        raise AssertionError("batch runner used while tracing")

    monkeypatch.setattr(batch_module, "run_trial_batch", explode)
    config = _config(kernel="batch")
    with api.configure(trace=True) as context:
        results = api.run_trials([config])
    assert results[0].to_dict() == _reference(_config()).to_dict()
    assert context.trace.total_events > 0


# ------------------------------------------------ ambient inheritance


def test_ambient_kernel_rewrites_configs():
    config = _config()  # kernel="reference"
    with api.configure(kernel="batch"):
        results = api.run_trials([config] * 2, trials=[0, 0])
    assert [m.to_dict() for m in results] == [
        _reference(config).to_dict()
    ] * 2


def test_ambient_fault_plan_applies_to_plan_free_configs():
    plan = fail_slow_plan(drive=0, factor=4.0)
    config = _config()
    with api.configure(fault_plan=plan):
        faulted = api.run_trials([config])[0]
    expected = MergeTrial(
        dataclasses.replace(config, fault_plan=plan),
        seed=config.base_seed,
    ).run()
    assert faulted.to_dict() == expected.to_dict()
    assert faulted.to_dict() != _reference(config).to_dict()


# ------------------------------------------------------------ timeouts


@pytest.mark.parametrize("kernel", ["fast", "batch"])
def test_timeout_raises_trial_timeout_error(kernel):
    config = _config(kernel=kernel, num_runs=10, blocks_per_run=400)
    with pytest.raises(api.TrialTimeoutError):
        api.run_trials([config], timeout_s=0.001)


def test_generous_timeout_completes():
    config = _config(kernel="batch")
    results = api.run_trials([config], timeout_s=60.0)
    assert results[0].to_dict() == _reference(_config()).to_dict()
