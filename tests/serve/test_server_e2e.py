"""End-to-end service tests over real ephemeral-port servers.

Every test here starts an actual :class:`SimulationServer` on a daemon
thread, talks to it through :class:`ServeClient` over real sockets, and
drains it afterwards — the full production path minus the process pool
(``workers=0`` computes on the loop's thread executor, which keeps the
suite fast and lets tests gate the worker function deterministically).
"""

import json
import threading
import time

import pytest

from repro.core.parameters import SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.serve import RetryPolicy, ServeError, ServeHTTPError
from repro.sweep.store import ResultStore, compute_key

from tests.serve.conftest import SMALL_CONFIG, client_for


def jsonable(value):
    """Round-trip through JSON, as any served payload implicitly is."""
    return json.loads(json.dumps(value))


class TestSimulate:
    def test_miss_then_hit_identical_payloads(self, serve_factory):
        server, handle = serve_factory()
        client = client_for(handle)
        first = client.simulate(SMALL_CONFIG, trials=2, seed=7)
        assert first["cache"] == {"hits": 0, "misses": 2, "coalesced": 0}
        second = client.simulate(SMALL_CONFIG, trials=2, seed=7)
        assert second["cache"] == {"hits": 2, "misses": 0, "coalesced": 0}
        assert first["trials"] == second["trials"]
        assert first["aggregate"] == second["aggregate"]

    @pytest.mark.parametrize("kernel", ["reference", "fast"])
    def test_served_equals_direct_run_trial(self, serve_factory, tmp_path,
                                            kernel):
        # A private cache dir per kernel: the content address excludes
        # the kernel (cross-kernel bit-identity), so sharing one store
        # would answer the second kernel from the first's entry without
        # ever exercising it.
        server, handle = serve_factory(cache_dir=tmp_path / f"cache-{kernel}")
        client = client_for(handle)
        served = client.simulate(SMALL_CONFIG, trials=2, seed=11,
                                 kernel=kernel)
        config = SimulationConfig(trials=2, base_seed=11, kernel=kernel,
                                  **SMALL_CONFIG)
        for trial in range(2):
            direct = MergeSimulation(config).run_trial(trial=trial)
            assert served["trials"][trial] == jsonable(direct.to_dict())

    def test_trial_granular_hits(self, serve_factory):
        server, handle = serve_factory()
        client = client_for(handle)
        client.simulate(SMALL_CONFIG, trials=1, seed=7)
        # Widening the same config reuses trial 0 and computes only 1.
        widened = client.simulate(SMALL_CONFIG, trials=2, seed=7)
        assert widened["cache"] == {"hits": 1, "misses": 1, "coalesced": 0}

    def test_bad_requests(self, serve_factory):
        server, handle = serve_factory()
        client = client_for(handle)
        with pytest.raises(ServeHTTPError) as excinfo:
            client.simulate({"num_runs": 4})  # num_disks missing
        assert excinfo.value.status == 400
        with pytest.raises(ServeHTTPError) as excinfo:
            client.simulate({**SMALL_CONFIG, "bogus_knob": 3})
        assert excinfo.value.status == 400
        assert "bogus_knob" in str(excinfo.value)

    def test_unknown_route_and_method(self, serve_factory):
        server, handle = serve_factory()
        client = client_for(handle)
        with pytest.raises(ServeHTTPError) as excinfo:
            client._request("GET", "/v1/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServeHTTPError) as excinfo:
            client._request("GET", "/v1/simulate")
        assert excinfo.value.status == 405


class TestCoalescing:
    def test_identical_concurrent_misses_compute_once(self, serve_factory,
                                                      gated_execute):
        server, handle = serve_factory()
        answers, errors = [], []

        def request():
            try:
                answers.append(
                    client_for(handle).simulate(SMALL_CONFIG, trials=1, seed=7)
                )
            except Exception as exc:  # surfaced in the main thread below
                errors.append(exc)

        first = threading.Thread(target=request)
        first.start()
        assert gated_execute.started.wait(10)  # the leader is computing
        second = threading.Thread(target=request)
        second.start()
        # Wait until the follower's request is admitted (the counter
        # bumps before the cache lookup), then give the loop a beat to
        # join it onto the leader's flight before releasing the gate.
        requests = server.metrics.counter("serve_requests", endpoint="simulate")
        deadline = time.monotonic() + 10
        while requests.value < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.2)
        gated_execute.release.set()
        first.join(30)
        second.join(30)
        assert not errors
        assert gated_execute.calls == 1  # one computation, two answers
        assert answers[0]["trials"] == answers[1]["trials"]
        flags = sorted(a["cache"]["coalesced"] for a in answers)
        assert flags == [0, 1]  # one leader, one coalesced follower
        counters = client_for(handle).metricz()["counters"]
        assert counters["serve_computed"] == 1
        assert counters["serve_cache{outcome=coalesced}"] == 1


class TestAdmissionControl:
    def test_rate_limit_answers_429_with_retry_after(self, serve_factory):
        server, handle = serve_factory(rate=0.001, burst=1.0)
        client = client_for(handle, client_id="greedy")
        client.simulate(SMALL_CONFIG, trials=1, seed=7)  # spends the burst
        with pytest.raises(ServeHTTPError) as excinfo:
            client.simulate(SMALL_CONFIG, trials=1, seed=7)
        assert excinfo.value.status == 429
        assert excinfo.value.payload["retry_after_s"] > 0
        # An unrelated client is not throttled by greedy's empty bucket.
        other = client_for(handle, client_id="patient")
        assert other.simulate(SMALL_CONFIG, trials=1, seed=7)["cache"]["hits"] == 1
        counters = client_for(handle, client_id="observer").metricz()["counters"]
        assert counters["serve_shed{reason=rate}"] == 1

    def test_queue_full_sheds_503(self, serve_factory, gated_execute):
        server, handle = serve_factory(queue_limit=1)
        errors = []

        def slow_request():
            try:
                client_for(handle).simulate(SMALL_CONFIG, trials=1, seed=7)
            except Exception as exc:
                errors.append(exc)

        holder = threading.Thread(target=slow_request)
        holder.start()
        assert gated_execute.started.wait(10)  # the only slot is held
        with pytest.raises(ServeHTTPError) as excinfo:
            client_for(handle).simulate(SMALL_CONFIG, trials=1, seed=999)
        assert excinfo.value.status == 503
        assert excinfo.value.payload["error"] == "overloaded"
        gated_execute.release.set()
        holder.join(30)
        assert not errors
        counters = client_for(handle).metricz()["counters"]
        assert counters["serve_shed{reason=queue}"] == 1

    def test_deadline_expires_but_the_flight_lands(self, serve_factory,
                                                   gated_execute):
        server, handle = serve_factory()
        client = client_for(handle)
        with pytest.raises(ServeHTTPError) as excinfo:
            client.simulate(SMALL_CONFIG, trials=1, seed=7, deadline_ms=200)
        assert excinfo.value.status == 504
        gated_execute.release.set()
        # The shielded flight survives its abandoned waiter and lands in
        # the store; a retry is a pure cache hit.
        store = server.cache.store
        config = SimulationConfig(trials=1, base_seed=7, **SMALL_CONFIG)
        key = compute_key(config, 0)
        deadline = time.monotonic() + 10
        while key not in store and time.monotonic() < deadline:
            time.sleep(0.02)
        retry = client.simulate(SMALL_CONFIG, trials=1, seed=7)
        assert retry["cache"] == {"hits": 1, "misses": 0, "coalesced": 0}
        assert gated_execute.calls == 1

    def test_client_retry_loop_rides_out_a_504(self, serve_factory,
                                               gated_execute):
        server, handle = serve_factory()
        client = client_for(
            handle,
            retry=RetryPolicy(max_attempts=5, backoff_s=0.05,
                              max_backoff_s=0.2),
        )
        releaser = threading.Timer(0.5, gated_execute.release.set)
        releaser.start()
        try:
            answer = client.simulate(SMALL_CONFIG, trials=1, seed=7,
                                     deadline_ms=200)
        finally:
            releaser.cancel()
        # Some attempt timed out, a later one found the cached answer.
        assert answer["cache"]["hits"] == 1
        assert gated_execute.calls == 1


class TestCacheWithoutWorkers:
    def test_hits_never_spawn_the_pool(self, serve_factory, tmp_path):
        cache_dir = tmp_path / "warm-cache"
        config = SimulationConfig(trials=2, base_seed=7, **SMALL_CONFIG)
        store = ResultStore(cache_dir)
        for trial in range(2):
            store.put(
                compute_key(config, trial),
                MergeSimulation(config).run_trial(trial=trial),
            )
        server, handle = serve_factory(workers=2, cache_dir=cache_dir)
        client = client_for(handle)
        answer = client.simulate(SMALL_CONFIG, trials=2, seed=7)
        assert answer["cache"] == {"hits": 2, "misses": 0, "coalesced": 0}
        assert server._pool is None  # lazy pool never materialized
        counters = client.metricz()["counters"]
        assert "serve_computed" not in counters


class TestSweepJobs:
    def test_submit_poll_done(self, serve_factory):
        server, handle = serve_factory()
        client = client_for(handle)
        record = client.sweep({
            "name": "e2e", "base": SMALL_CONFIG,
            "grid": {"prefetch_depth": [1, 2]}, "trials": 1, "base_seed": 7,
        })
        assert record["status"] == "queued"
        assert record["job"] == "job-000001"
        assert record["trials_total"] == 2
        done = client.wait_for_job(record["job"], poll_s=0.05)
        assert done["status"] == "done"
        assert done["trials_done"] == 2
        assert len(done["cells_result"]) == 2
        # The job warmed the shared cache: the same cell is now a hit.
        hit = client.simulate({**SMALL_CONFIG, "prefetch_depth": 2},
                              trials=1, seed=7)
        assert hit["cache"]["hits"] == 1

    def test_bad_spec_rejected_at_admission(self, serve_factory):
        server, handle = serve_factory()
        client = client_for(handle)
        with pytest.raises(ServeHTTPError) as excinfo:
            client.sweep({"base": SMALL_CONFIG, "grid": {"num_disks": []}})
        assert excinfo.value.status == 400

    def test_unknown_job_404(self, serve_factory):
        server, handle = serve_factory()
        with pytest.raises(ServeHTTPError) as excinfo:
            client_for(handle).job("job-999999")
        assert excinfo.value.status == 404


class TestLifecycle:
    def test_healthz_and_metricz_shapes(self, serve_factory):
        server, handle = serve_factory()
        client = client_for(handle)
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        client.simulate(SMALL_CONFIG, trials=1, seed=7)
        metrics = client.metricz()
        assert set(metrics) == {"counters", "gauges", "histograms"}
        assert metrics["counters"]["serve_requests{endpoint=simulate}"] == 1
        latency = metrics["histograms"]["serve_latency_ms{endpoint=simulate}"]
        assert latency["count"] == 1

    def test_graceful_drain_finishes_inflight_work(self, serve_factory,
                                                   gated_execute):
        server, handle = serve_factory()
        answers, errors = [], []

        def request():
            try:
                answers.append(
                    client_for(handle).simulate(SMALL_CONFIG, trials=1, seed=7)
                )
            except Exception as exc:
                errors.append(exc)

        inflight = threading.Thread(target=request)
        inflight.start()
        assert gated_execute.started.wait(10)
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        time.sleep(0.1)  # the drain is now waiting on the request
        gated_execute.release.set()
        inflight.join(30)
        stopper.join(30)
        assert not errors
        assert answers[0]["cache"]["misses"] == 1  # answered, not dropped
        assert not handle.thread.is_alive()
        with pytest.raises(ServeError):
            client_for(handle).healthz()  # the listener is gone
