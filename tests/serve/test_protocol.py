"""Wire-format validation: requests in, responses out."""

import pytest

from repro.core.parameters import PrefetchStrategy, SimulationConfig
from repro.core.simulator import MergeSimulation
from repro.serve.protocol import (
    MAX_TRIALS_PER_REQUEST,
    PROTOCOL_VERSION,
    ProtocolError,
    overload_body,
    parse_simulate_request,
    parse_sweep_request,
    simulate_response,
)
from repro.sweep.keys import CACHE_SCHEMA_VERSION

CONFIG = {"num_runs": 4, "num_disks": 2, "blocks_per_run": 20}


class TestParseSimulate:
    def test_minimal(self):
        request = parse_simulate_request({"config": CONFIG})
        assert request.config.num_runs == 4
        assert request.config.num_disks == 2
        assert request.deadline_s is None

    def test_overrides_fold_into_config(self):
        request = parse_simulate_request({
            "config": CONFIG, "trials": 3, "seed": 77, "kernel": "fast",
        })
        assert request.config.trials == 3
        assert request.config.base_seed == 77
        assert request.config.kernel == "fast"
        assert request.trials == 3

    def test_enum_strings_coerced(self):
        request = parse_simulate_request({
            "config": {**CONFIG, "strategy": "inter-run",
                       "cache_capacity": 400},
        })
        assert request.config.strategy is PrefetchStrategy.INTER_RUN

    def test_deadline_ms(self):
        request = parse_simulate_request(
            {"config": CONFIG, "deadline_ms": 1500}
        )
        assert request.deadline_s == pytest.approx(1.5)

    @pytest.mark.parametrize("body, fragment", [
        (None, "JSON object"),
        ([], "JSON object"),
        ({}, "config"),
        ({"config": CONFIG, "tirals": 2}, "tirals"),
        ({"config": {"num_runs": 4, "num_disks": 2, "bogus": 1}}, "bogus"),
        ({"config": CONFIG, "deadline_ms": -5}, "deadline_ms"),
        ({"config": CONFIG, "deadline_ms": "soon"}, "deadline_ms"),
        ({"config": CONFIG, "trials": MAX_TRIALS_PER_REQUEST + 1}, "ceiling"),
    ])
    def test_rejects(self, body, fragment):
        with pytest.raises(ProtocolError) as excinfo:
            parse_simulate_request(body)
        assert excinfo.value.status == 400
        assert fragment in str(excinfo.value)

    def test_error_body_shape(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_simulate_request({})
        body = excinfo.value.body()
        assert set(body) == {"error", "detail"}


class TestParseSweep:
    def test_round_trip(self):
        spec = parse_sweep_request({"spec": {
            "name": "t", "base": CONFIG, "grid": {"prefetch_depth": [1, 2]},
            "trials": 2, "base_seed": 5,
        }})
        assert spec.name == "t"
        assert len(spec.cells()) == 2

    def test_missing_spec(self):
        with pytest.raises(ProtocolError, match="spec"):
            parse_sweep_request({})

    def test_bad_grid_fails_at_admission(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request({"spec": {
                "base": CONFIG, "grid": {"num_disks": []},
            }})
        assert excinfo.value.status == 400


class TestSimulateResponse:
    def test_shape_and_versions(self):
        config = SimulationConfig(trials=2, **CONFIG)
        trials = [
            MergeSimulation(config).run_trial(trial=t) for t in range(2)
        ]
        body = simulate_response(
            config, trials, hits=1, misses=1, coalesced=0, elapsed_ms=3.5
        )
        assert body["protocol"] == PROTOCOL_VERSION
        assert body["cache_schema"] == CACHE_SCHEMA_VERSION
        assert body["cache"] == {"hits": 1, "misses": 1, "coalesced": 0}
        assert len(body["trials"]) == 2
        assert body["trials"][0] == trials[0].to_dict()
        aggregate = body["aggregate"]
        assert aggregate["total_time_s"]["mean"] == pytest.approx(
            sum(m.total_time_s for m in trials) / 2
        )
        low, high = aggregate["total_time_s"]["ci95"]
        assert low <= aggregate["total_time_s"]["mean"] <= high


def test_overload_body_mirrors_header():
    body = overload_body("rate-limited", "slow down", 2.5)
    assert body["retry_after_s"] == 2.5
    assert body["error"] == "rate-limited"
