"""ServeClient retry discipline against a scripted transport.

The transport (``_once``) is stubbed so every retry decision — which
statuses retry, how long the backoff is, how ``Retry-After`` overrides
it — is asserted exactly, with an injected sleep that records instead
of waiting.
"""

import pytest

from repro.serve.client import (
    NO_RETRY,
    RetryPolicy,
    ServeClient,
    ServeError,
    ServeHTTPError,
)


class ScriptedTransport:
    """Feed a fixed sequence of (status, headers, payload) answers."""

    def __init__(self, answers):
        self.answers = list(answers)
        self.requests = []

    def __call__(self, method, path, body):
        self.requests.append((method, path, body))
        answer = self.answers.pop(0)
        if isinstance(answer, Exception):
            raise answer
        return answer


def make_client(answers, *, retry=None, monkeypatch=None):
    sleeps = []
    client = ServeClient(
        retry=retry or RetryPolicy(max_attempts=4, backoff_s=0.25),
        sleep=sleeps.append,
    )
    transport = ScriptedTransport(answers)
    monkeypatch.setattr(client, "_once", transport)
    return client, transport, sleeps


class TestRetryPolicy:
    def test_capped_exponential(self):
        policy = RetryPolicy(backoff_s=0.25, multiplier=2.0, max_backoff_s=1.0)
        assert [policy.backoff_for(n) for n in (1, 2, 3, 4)] == [
            0.25, 0.5, 1.0, 1.0
        ]

    def test_retry_after_takes_precedence_but_is_capped(self):
        policy = RetryPolicy(backoff_s=0.25, max_backoff_s=5.0)
        assert policy.backoff_for(1, retry_after_s=2.0) == 2.0
        assert policy.backoff_for(1, retry_after_s=60.0) == 5.0

    def test_at_least_one_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestRetries:
    def test_success_needs_no_sleep(self, monkeypatch):
        client, transport, sleeps = make_client(
            [(200, {}, {"ok": True})], monkeypatch=monkeypatch
        )
        assert client.healthz() == {"ok": True}
        assert sleeps == []

    def test_429_honors_retry_after_body(self, monkeypatch):
        client, transport, sleeps = make_client([
            (429, {"retry-after": "2"}, {"retry_after_s": 1.75}),
            (200, {}, {"ok": True}),
        ], monkeypatch=monkeypatch)
        assert client.healthz() == {"ok": True}
        # The body's exact value wins over the integer-rounded header.
        assert sleeps == [1.75]

    def test_503_backs_off_exponentially_without_retry_after(self, monkeypatch):
        client, transport, sleeps = make_client([
            (503, {}, {"error": "overloaded"}),
            (503, {}, {"error": "overloaded"}),
            (200, {}, {"ok": True}),
        ], monkeypatch=monkeypatch)
        assert client.healthz() == {"ok": True}
        assert sleeps == [0.25, 0.5]

    def test_exhausted_retries_raise_the_last_answer(self, monkeypatch):
        client, transport, sleeps = make_client(
            [(503, {}, {"error": "overloaded"})] * 4, monkeypatch=monkeypatch
        )
        with pytest.raises(ServeHTTPError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert len(transport.requests) == 4
        assert sleeps == [0.25, 0.5, 1.0]  # no sleep after the last attempt

    def test_400_is_not_retried(self, monkeypatch):
        client, transport, sleeps = make_client([
            (400, {}, {"error": "bad-config", "detail": "num_disks"}),
            (200, {}, {"ok": True}),
        ], monkeypatch=monkeypatch)
        with pytest.raises(ServeHTTPError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 400
        assert "num_disks" in str(excinfo.value)
        assert len(transport.requests) == 1

    def test_transport_errors_retry(self, monkeypatch):
        client, transport, sleeps = make_client([
            ConnectionRefusedError("refused"),
            (200, {}, {"ok": True}),
        ], monkeypatch=monkeypatch)
        assert client.healthz() == {"ok": True}
        assert sleeps == [0.25]

    def test_no_retry_policy_fails_fast(self, monkeypatch):
        client, transport, sleeps = make_client(
            [(429, {}, {})], retry=NO_RETRY, monkeypatch=monkeypatch
        )
        with pytest.raises(ServeHTTPError):
            client.healthz()
        assert len(transport.requests) == 1
        assert sleeps == []


class TestRequestShapes:
    def test_simulate_body(self, monkeypatch):
        client, transport, _ = make_client(
            [(200, {}, {})], monkeypatch=monkeypatch
        )
        client.simulate({"num_runs": 4, "num_disks": 2}, trials=3, seed=9,
                        kernel="fast", deadline_ms=500)
        method, path, body = transport.requests[0]
        assert (method, path) == ("POST", "/v1/simulate")
        assert body == {
            "config": {"num_runs": 4, "num_disks": 2},
            "trials": 3, "seed": 9, "kernel": "fast", "deadline_ms": 500,
        }

    def test_wait_for_job_polls_until_terminal(self, monkeypatch):
        client, transport, sleeps = make_client([
            (200, {}, {"status": "queued"}),
            (200, {}, {"status": "running"}),
            (200, {}, {"status": "done", "cells": 2}),
        ], monkeypatch=monkeypatch)
        record = client.wait_for_job("job-000001", poll_s=0.1)
        assert record["status"] == "done"
        assert sleeps == [0.1, 0.1]

    def test_wait_for_job_gives_up(self, monkeypatch):
        client, transport, _ = make_client(
            [(200, {}, {"status": "running"})] * 3, monkeypatch=monkeypatch
        )
        with pytest.raises(ServeError, match="still running"):
            client.wait_for_job("job-000001", poll_s=0, max_polls=3)
