"""Token-bucket rate limiting on a fake clock: exact refill math."""

import pytest

from repro.serve.limiter import _PRUNE_EVERY, RateLimiter, TokenBucket


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        assert [bucket.take(0.0) for _ in range(4)] == [
            True, True, True, False
        ]

    def test_continuous_refill(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.take(0.0)
        assert not bucket.take(0.0)
        # 2 tokens/s: exactly one token exists again at t=0.5.
        assert not bucket.take(0.4999)
        assert bucket.take(0.5)

    def test_retry_after_is_exact(self):
        bucket = TokenBucket(rate=0.5, burst=1.0, now=0.0)
        bucket.take(0.0)
        assert bucket.retry_after_s(0.0) == pytest.approx(2.0)
        assert bucket.retry_after_s(1.0) == pytest.approx(1.0)
        assert bucket.retry_after_s(2.0) == 0.0

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        bucket._refill(100.0)
        assert bucket.tokens == 2.0


class TestRateLimiter:
    def test_disabled_admits_everything(self):
        limiter = RateLimiter(rate=0.0)
        assert not limiter.enabled
        assert all(limiter.allow("c") for _ in range(1000))
        assert len(limiter) == 0  # no buckets even created

    def test_per_client_isolation(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        assert limiter.allow("alice")
        assert not limiter.allow("alice")
        assert limiter.allow("bob")  # alice's empty bucket is not bob's

    def test_retry_after_matches_bucket(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=0.25, burst=1.0, clock=clock)
        limiter.allow("c")
        assert not limiter.allow("c")
        assert limiter.retry_after_s("c") == pytest.approx(4.0)
        assert limiter.retry_after_s("unknown-client") == 0.0

    def test_burst_default(self):
        assert RateLimiter(rate=7.0).burst == 7.0
        assert RateLimiter(rate=0.5).burst == 1.0  # never below one token

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=1.0, burst=0.5)

    def test_idle_buckets_pruned(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=100.0, burst=1.0, clock=clock)
        limiter.allow("idle-client")
        clock.advance(10.0)  # idle-client's bucket refills completely
        for index in range(_PRUNE_EVERY):
            limiter.allow(f"churn-{index}")
            clock.advance(1.0)  # each churn bucket refills too
        assert "idle-client" not in limiter._buckets
        assert len(limiter) < _PRUNE_EVERY
