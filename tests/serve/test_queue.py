"""Admission-queue slot accounting: shed vs wait."""

import asyncio

import pytest

from repro.serve.queue import AdmissionQueue, QueueFullError


def test_try_acquire_sheds_at_the_limit():
    queue = AdmissionQueue(limit=2)
    queue.try_acquire()
    queue.try_acquire()
    assert queue.depth == 2
    with pytest.raises(QueueFullError):
        queue.try_acquire()
    queue.release()
    queue.try_acquire()  # a freed slot admits again


def test_unbounded_never_sheds():
    queue = AdmissionQueue(limit=0)
    assert not queue.bounded
    for _ in range(1000):
        queue.try_acquire()
    assert queue.depth == 1000


def test_release_without_slot_is_a_bug():
    with pytest.raises(RuntimeError):
        AdmissionQueue(limit=1).release()


def test_acquire_waits_for_a_slot():
    async def scenario():
        queue = AdmissionQueue(limit=1)
        queue.try_acquire()
        order = []

        async def waiter():
            await queue.acquire()
            order.append("acquired")
            queue.release()

        task = asyncio.ensure_future(waiter())
        await asyncio.sleep(0)
        assert order == []  # still parked
        order.append("releasing")
        queue.release()
        await task
        return order

    assert asyncio.run(scenario()) == ["releasing", "acquired"]


def test_slot_context_manager_sheds_and_waits():
    async def scenario():
        queue = AdmissionQueue(limit=1)
        async with queue.slot(wait=False):
            assert queue.depth == 1
            with pytest.raises(QueueFullError):
                async with queue.slot(wait=False):
                    pass
        assert queue.depth == 0
        async with queue.slot(wait=True):
            assert queue.depth == 1
        assert queue.depth == 0

    asyncio.run(scenario())


def test_slot_released_on_exception():
    async def scenario():
        queue = AdmissionQueue(limit=1)
        with pytest.raises(ValueError):
            async with queue.slot(wait=False):
                raise ValueError("work blew up")
        assert queue.depth == 0

    asyncio.run(scenario())
