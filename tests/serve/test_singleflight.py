"""Single-flight coalescing semantics on a private event loop."""

import asyncio

import pytest

from repro.serve.singleflight import SingleFlight


def run(coro):
    return asyncio.run(coro)


def test_concurrent_identical_work_runs_once():
    async def scenario():
        flights = SingleFlight()
        calls = 0
        gate = asyncio.Event()

        async def work():
            nonlocal calls
            calls += 1
            await gate.wait()
            return "answer"

        first = asyncio.ensure_future(flights.run("k", work))
        await asyncio.sleep(0)  # let the leader take off
        second = asyncio.ensure_future(flights.run("k", work))
        await asyncio.sleep(0)
        gate.set()
        results = await asyncio.gather(first, second)
        return calls, results

    calls, results = run(scenario())
    assert calls == 1
    assert results[0] == ("answer", False)  # the leader
    assert results[1] == ("answer", True)  # coalesced follower


def test_distinct_keys_do_not_coalesce():
    async def scenario():
        flights = SingleFlight()

        async def work():
            return "x"

        (_, first), (_, second) = await asyncio.gather(
            flights.run("a", work), flights.run("b", work)
        )
        return first, second

    assert run(scenario()) == (False, False)


def test_finished_flight_is_forgotten():
    async def scenario():
        flights = SingleFlight()

        async def work():
            return 1

        await flights.run("k", work)
        assert "k" not in flights
        # A later request recomputes rather than joining a stale flight.
        _, coalesced = await flights.run("k", work)
        return coalesced

    assert run(scenario()) is False


def test_failed_flight_does_not_poison_the_key():
    async def scenario():
        flights = SingleFlight()

        async def boom():
            raise RuntimeError("first attempt fails")

        async def fine():
            return "recovered"

        with pytest.raises(RuntimeError):
            await flights.run("k", boom)
        value, coalesced = await flights.run("k", fine)
        return value, coalesced

    assert run(scenario()) == ("recovered", False)


def test_cancelled_waiter_leaves_the_flight_running():
    async def scenario():
        flights = SingleFlight()
        gate = asyncio.Event()
        landed = []

        async def work():
            await gate.wait()
            landed.append(True)
            return "answer"

        leader = asyncio.ensure_future(flights.run("k", work))
        await asyncio.sleep(0)
        waiter = asyncio.ensure_future(flights.run("k", work))
        await asyncio.sleep(0)
        waiter.cancel()
        with pytest.raises(asyncio.CancelledError):
            await waiter
        # The shared flight survived the waiter's cancellation.
        assert "k" in flights
        gate.set()
        value, _ = await leader
        return value, landed

    value, landed = run(scenario())
    assert value == "answer"
    assert landed == [True]
