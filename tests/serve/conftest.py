"""Shared harness for serve tests: real servers on ephemeral ports."""

import threading

import pytest

from repro.serve import NO_RETRY, ServeClient, ServeConfig, SimulationServer
from repro.serve.server import start_in_thread
from repro.sweep.worker import execute_job

#: A configuration small enough that a trial computes in well under a
#: second but large enough to exercise the full simulation.
SMALL_CONFIG = {"num_runs": 4, "num_disks": 2, "blocks_per_run": 20}


@pytest.fixture
def serve_factory(tmp_path):
    """Start real servers on ephemeral ports; drain them all afterwards."""
    handles = []

    def start(**kwargs):
        kwargs.setdefault("port", 0)
        kwargs.setdefault("workers", 0)
        kwargs.setdefault("cache_dir", tmp_path / "cache")
        kwargs.setdefault("drain_grace_s", 5.0)
        server = SimulationServer(ServeConfig(**kwargs))
        handle = start_in_thread(server)
        handles.append(handle)
        return server, handle

    yield start
    for handle in handles:
        handle.stop()


def client_for(handle, **kwargs):
    """A fail-fast client (no retries unless a test opts in)."""
    host, port = handle.address
    kwargs.setdefault("retry", NO_RETRY)
    kwargs.setdefault("timeout_s", 30.0)
    return ServeClient(host, port, **kwargs)


class GatedExecute:
    """A stand-in for ``execute_job`` that parks until released.

    Lets tests hold a computation in flight deterministically — to
    overlap identical requests (coalescing), fill compute slots
    (queue shedding), or outlive a deadline — then delegate to the
    real worker so results stay bit-identical.
    """

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self._lock = threading.Lock()
        self.calls = 0

    def __call__(self, payload):
        with self._lock:
            self.calls += 1
        self.started.set()
        if not self.release.wait(timeout=30):
            raise TimeoutError("test gate never released")
        return execute_job(payload)


@pytest.fixture
def gated_execute(monkeypatch):
    gate = GatedExecute()
    monkeypatch.setattr("repro.serve.server.execute_job", gate)
    yield gate
    gate.release.set()  # never leave a server thread parked
