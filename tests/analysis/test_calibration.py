"""Tests for the parameter-reconstruction solver."""

import pytest

from repro.analysis.calibration import (
    PAPER_ANCHORS,
    Anchor,
    solve_constants,
)
from repro.core.parameters import PAPER_DISK


def test_recovers_the_paper_constants():
    calibration = solve_constants()
    assert calibration.seek_ms_per_cylinder == pytest.approx(0.03, abs=0.001)
    assert calibration.avg_rotational_latency_ms == pytest.approx(8.33, abs=0.02)
    assert calibration.transfer_ms_per_block == pytest.approx(2.05, abs=0.005)


def test_residuals_are_sub_percent():
    calibration = solve_constants()
    assert calibration.max_relative_residual < 0.005
    assert len(calibration.residuals) == len(PAPER_ANCHORS)


def test_recovered_constants_match_paper_disk():
    calibration = solve_constants()
    assert calibration.seek_ms_per_cylinder == pytest.approx(
        PAPER_DISK.seek_ms_per_cylinder, rel=0.02
    )
    assert calibration.avg_rotational_latency_ms == pytest.approx(
        PAPER_DISK.avg_rotational_latency_ms, rel=0.02
    )
    assert calibration.transfer_ms_per_block == pytest.approx(
        PAPER_DISK.transfer_ms_per_block, rel=0.02
    )


def test_anchor_coefficients_linear_form():
    anchor = Anchor(25, 1, 1, 357.2, "test")
    a_s, a_r, a_t = anchor.coefficients()
    # total = k * (m*k/3*S + R + T): coefficients 25*15.625*25/3, 25, 25.
    assert a_s == pytest.approx(25 * 15.625 * 25 / 3)
    assert a_r == pytest.approx(25)
    assert a_t == pytest.approx(25)


def test_solver_is_exact_on_synthetic_data():
    """Anchors generated from known constants must be recovered exactly."""
    s, r, t = 0.07, 5.5, 1.25
    anchors = []
    # Note k/D must vary across anchors or S and R are inseparable
    # (the S coefficient is proportional to k/D times the R one).
    for k, d, n in ((10, 1, 1), (20, 1, 1), (10, 1, 5), (40, 4, 10)):
        a = Anchor(k, d, n, 0.0, "synthetic")
        coeff = a.coefficients()
        total = coeff[0] * s + coeff[1] * r + coeff[2] * t
        anchors.append(Anchor(k, d, n, total, "synthetic"))
    calibration = solve_constants(anchors)
    assert calibration.seek_ms_per_cylinder == pytest.approx(s, rel=1e-9)
    assert calibration.avg_rotational_latency_ms == pytest.approx(r, rel=1e-9)
    assert calibration.transfer_ms_per_block == pytest.approx(t, rel=1e-9)
    assert calibration.max_relative_residual < 1e-9


def test_underdetermined_system_rejected():
    with pytest.raises(ValueError):
        solve_constants(PAPER_ANCHORS[:2])


def test_degenerate_anchors_rejected():
    same = Anchor(25, 1, 1, 357.2, "dup")
    with pytest.raises(ValueError, match="singular"):
        solve_constants([same, same, same])
