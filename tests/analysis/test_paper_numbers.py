"""Pin every analytic number the paper prints.

These tests encode the calibration in DESIGN.md: with the reconstructed
constants (S=0.03 ms/cyl, R=8.33 ms, T=2.05 ms, m=15.625 cyl/run, 1000
blocks/run) each closed form evaluates to the value quoted in the
paper's prose, at the paper's printed precision.
"""

import pytest

from repro.analysis import interrun, iotime, urn_game
from repro.analysis.seek_model import SeekDistanceModel
from repro.core.parameters import PAPER_DISK

M = 15.625  # cylinders per run


def total(block_ms, k):
    return iotime.total_time_s(block_ms, k)


# ----------------------------------------------------------------------
# Section 3.1: single disk
# ----------------------------------------------------------------------

def test_no_prefetch_tau_k25():
    tau = iotime.no_prefetch_single_disk_block_ms(25, M, PAPER_DISK)
    assert tau == pytest.approx(14.29, abs=0.01)


def test_no_prefetch_tau_k50():
    tau = iotime.no_prefetch_single_disk_block_ms(50, M, PAPER_DISK)
    assert tau == pytest.approx(18.19, abs=0.01)


def test_no_prefetch_total_k25_is_357s():
    tau = iotime.no_prefetch_single_disk_block_ms(25, M, PAPER_DISK)
    assert total(tau, 25) == pytest.approx(357.2, abs=0.5)


def test_no_prefetch_total_k50_is_910s():
    tau = iotime.no_prefetch_single_disk_block_ms(50, M, PAPER_DISK)
    assert total(tau, 50) == pytest.approx(910.0, abs=1.0)


def test_intra_run_n10_k25_is_81_8s():
    tau = iotime.intra_run_single_disk_block_ms(25, M, 10, PAPER_DISK)
    assert total(tau, 25) == pytest.approx(81.8, abs=0.2)


def test_intra_run_n10_k50_is_183_2s():
    tau = iotime.intra_run_single_disk_block_ms(50, M, 10, PAPER_DISK)
    assert total(tau, 50) == pytest.approx(183.2, abs=0.2)


def test_intra_run_n30_estimates():
    k25 = total(iotime.intra_run_single_disk_block_ms(25, M, 30, PAPER_DISK), 25)
    k50 = total(iotime.intra_run_single_disk_block_ms(50, M, 30, PAPER_DISK), 50)
    assert k25 == pytest.approx(61.4, abs=0.3)
    assert k50 == pytest.approx(129.4, abs=0.5)


def test_single_disk_lower_bounds():
    assert interrun.lower_bound_total_s(25, 1, PAPER_DISK) == pytest.approx(51.25)
    assert interrun.lower_bound_total_s(50, 1, PAPER_DISK) == pytest.approx(102.5)


# ----------------------------------------------------------------------
# Section 3.2: multiple disks
# ----------------------------------------------------------------------

def test_no_prefetch_multi_disk_k25_d5_is_279s():
    tau = iotime.no_prefetch_multi_disk_block_ms(25, M, 5, PAPER_DISK)
    assert total(tau, 25) == pytest.approx(279.0, abs=0.5)


def test_no_prefetch_multi_disk_k50_d10_is_558s():
    tau = iotime.no_prefetch_multi_disk_block_ms(50, M, 10, PAPER_DISK)
    assert total(tau, 50) == pytest.approx(558.1, abs=0.5)


def test_sync_intra_run_k25_d5_n30_is_58_9s():
    """Quoted when deriving the 23.4s unsynchronized asymptote."""
    tau = iotime.intra_run_multi_disk_block_ms(25, M, 30, 5, PAPER_DISK)
    assert total(tau, 25) == pytest.approx(58.85, abs=0.2)


def test_urn_game_overlaps():
    assert urn_game.expected_concurrency(5) == pytest.approx(2.51, abs=0.01)
    assert urn_game.expected_concurrency(10) == pytest.approx(3.66, abs=0.01)
    assert urn_game.expected_concurrency(25) == pytest.approx(5.92, abs=0.05)


def test_urn_game_closed_form_tracks_exact():
    for d in (5, 10, 25, 100):
        exact = urn_game.expected_concurrency(d)
        closed = urn_game.expected_concurrency_closed_form(d)
        assert closed == pytest.approx(exact, rel=0.05)


def test_unsync_intra_run_asymptote_k25_d5_is_23_4s():
    sync = total(iotime.intra_run_multi_disk_block_ms(25, M, 30, 5, PAPER_DISK), 25)
    unsync = urn_game.unsynchronized_intra_run_total_s(sync, 5)
    assert unsync == pytest.approx(23.4, abs=0.2)


def test_unsync_intra_run_asymptote_k50_d10_is_32_2s():
    sync = total(iotime.intra_run_multi_disk_block_ms(50, M, 30, 10, PAPER_DISK), 50)
    assert sync == pytest.approx(117.7, abs=0.4)
    unsync = urn_game.unsynchronized_intra_run_total_s(sync, 10)
    assert unsync == pytest.approx(32.2, abs=0.2)


def test_inter_run_sync_tau_is_0_703ms():
    tau = interrun.inter_run_sync_block_ms(25, M, 10, 5, PAPER_DISK)
    assert tau == pytest.approx(0.703, abs=0.002)


def test_inter_run_sync_total_is_17_6s():
    assert interrun.inter_run_sync_total_s(25, M, 10, 5, PAPER_DISK) == (
        pytest.approx(17.6, abs=0.1)
    )


def test_multi_disk_lower_bounds():
    assert interrun.lower_bound_total_s(25, 5, PAPER_DISK) == pytest.approx(10.25)
    assert interrun.lower_bound_total_s(50, 5, PAPER_DISK) == pytest.approx(20.5)
    assert interrun.lower_bound_total_s(50, 10, PAPER_DISK) == pytest.approx(10.25)


# ----------------------------------------------------------------------
# The seek model behind everything
# ----------------------------------------------------------------------

def test_seek_expected_moves_approximation():
    for k in (25, 50, 100):
        model = SeekDistanceModel(k)
        assert model.expected_moves() == pytest.approx(k / 3, rel=0.002)


def test_paper_data_sizes():
    """1.6M records for k=25, 3.2M for k=50 (64 records x 1000 blocks)."""
    assert 25 * 1000 * 64 == 1_600_000
    assert 50 * 1000 * 64 == 3_200_000
