"""Direct unit tests for the equation (1)-(4) implementations."""

import pytest

from repro.analysis.iotime import (
    intra_run_multi_disk_block_ms,
    intra_run_single_disk_block_ms,
    no_prefetch_multi_disk_block_ms,
    no_prefetch_single_disk_block_ms,
    total_time_s,
)
from repro.core.parameters import DiskParameters

#: A disk with unit-friendly constants for hand calculation.
DISK = DiskParameters(
    seek_ms_per_cylinder=1.0,
    avg_rotational_latency_ms=6.0,
    transfer_ms_per_block=3.0,
)


def test_eq1_hand_computed():
    # m=2, k=6: seek 2*(6/3)*1 = 4; + R + T = 13.
    assert no_prefetch_single_disk_block_ms(6, 2.0, DISK) == pytest.approx(13.0)


def test_eq2_amortizes_seek_and_rotation():
    # N=2 halves the positioning terms: 2 + 3 + 3 = 8.
    assert intra_run_single_disk_block_ms(6, 2.0, 2, DISK) == pytest.approx(8.0)


def test_eq3_divides_seek_by_d():
    # D=2: seek 2; + 6 + 3 = 11.
    assert no_prefetch_multi_disk_block_ms(6, 2.0, 2, DISK) == pytest.approx(11.0)


def test_eq4_divides_seek_by_nd():
    # N=2, D=2: seek 1; rotation 3; transfer 3 = 7.
    assert intra_run_multi_disk_block_ms(6, 2.0, 2, 2, DISK) == pytest.approx(7.0)


def test_equations_nest_consistently():
    k, m = 10, 3.0
    assert intra_run_multi_disk_block_ms(k, m, 1, 1, DISK) == pytest.approx(
        no_prefetch_single_disk_block_ms(k, m, DISK)
    )
    assert intra_run_multi_disk_block_ms(k, m, 4, 1, DISK) == pytest.approx(
        intra_run_single_disk_block_ms(k, m, 4, DISK)
    )
    assert intra_run_multi_disk_block_ms(k, m, 1, 3, DISK) == pytest.approx(
        no_prefetch_multi_disk_block_ms(k, m, 3, DISK)
    )


def test_total_time_unit_conversion():
    # 2 ms per block, 10 runs of 1000 blocks: 20 seconds.
    assert total_time_s(2.0, 10) == pytest.approx(20.0)
    assert total_time_s(2.0, 10, blocks_per_run=500) == pytest.approx(10.0)


def test_seek_term_scales_with_run_length():
    short = no_prefetch_single_disk_block_ms(10, 1.0, DISK)
    long = no_prefetch_single_disk_block_ms(10, 2.0, DISK)
    assert long - short == pytest.approx(10 / 3)  # extra m * k/3 * S


@pytest.mark.parametrize("bad", [0, -1])
def test_invalid_arguments(bad):
    with pytest.raises(ValueError):
        intra_run_single_disk_block_ms(5, 1.0, bad, DISK)
    with pytest.raises(ValueError):
        no_prefetch_multi_disk_block_ms(5, 1.0, bad, DISK)
    with pytest.raises(ValueError):
        intra_run_multi_disk_block_ms(5, 1.0, 1, bad, DISK)
