"""Tests for the inter-run model and lower bounds."""

import pytest

from repro.analysis.interrun import (
    expected_max_uniform,
    inter_run_sync_block_ms,
    inter_run_sync_cycle_ms,
    inter_run_sync_total_s,
    lower_bound_total_s,
)
from repro.core.parameters import PAPER_DISK, DiskParameters

M = 15.625


def test_expected_max_uniform_formula():
    assert expected_max_uniform(1, 10.0) == pytest.approx(5.0)
    assert expected_max_uniform(4, 10.0) == pytest.approx(8.0)
    assert expected_max_uniform(9, 10.0) == pytest.approx(9.0)


def test_expected_max_monte_carlo():
    import random

    rng = random.Random(7)
    d, upper, rounds = 5, 2.0, 50_000
    total = sum(max(rng.uniform(0, upper) for _ in range(d)) for _ in range(rounds))
    assert total / rounds == pytest.approx(expected_max_uniform(d, upper), rel=0.01)


def test_cycle_decomposition():
    cycle = inter_run_sync_cycle_ms(25, M, 10, 5, PAPER_DISK)
    seek = M * 25 * 0.03 / 15
    rotation = expected_max_uniform(5, 16.66)
    transfer = 10 * 2.05
    assert cycle == pytest.approx(seek + rotation + transfer)


def test_block_time_is_cycle_over_nd():
    cycle = inter_run_sync_cycle_ms(25, M, 10, 5, PAPER_DISK)
    block = inter_run_sync_block_ms(25, M, 10, 5, PAPER_DISK)
    assert block == pytest.approx(cycle / 50)


def test_total_time_scales_with_blocks_per_run():
    full = inter_run_sync_total_s(25, M, 10, 5, PAPER_DISK, blocks_per_run=1000)
    half = inter_run_sync_total_s(25, M, 10, 5, PAPER_DISK, blocks_per_run=500)
    assert half == pytest.approx(full / 2)


def test_block_time_approaches_t_over_d_for_large_n():
    block = inter_run_sync_block_ms(25, M, 1000, 5, PAPER_DISK)
    assert block == pytest.approx(2.05 / 5, rel=0.01)


def test_lower_bound_scales_inversely_with_d():
    one = lower_bound_total_s(25, 1, PAPER_DISK)
    five = lower_bound_total_s(25, 5, PAPER_DISK)
    assert five == pytest.approx(one / 5)


def test_lower_bound_custom_disk():
    disk = DiskParameters(transfer_ms_per_block=1.0)
    assert lower_bound_total_s(10, 2, disk, blocks_per_run=100) == pytest.approx(0.5)


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        expected_max_uniform(0, 1.0)
    with pytest.raises(ValueError):
        inter_run_sync_cycle_ms(25, M, 0, 5, PAPER_DISK)
    with pytest.raises(ValueError):
        lower_bound_total_s(25, 0, PAPER_DISK)
