"""Tests for the urn-game concurrency model."""

import math

import pytest

from repro.analysis.urn_game import (
    expected_concurrency,
    expected_concurrency_closed_form,
    round_length_pmf,
    survival_probabilities,
)


def test_survival_starts_at_one():
    assert survival_probabilities(5)[0] == 1.0


def test_survival_recursion():
    d = 5
    q = survival_probabilities(d)
    for j in range(2, d + 1):
        assert q[j - 1] == pytest.approx(q[j - 2] * (d - j + 1) / d)


def test_survival_monotone_decreasing():
    q = survival_probabilities(10)
    assert all(q[i] >= q[i + 1] for i in range(len(q) - 1))


def test_pmf_sums_to_one():
    for d in (1, 2, 5, 10, 25):
        assert sum(round_length_pmf(d)) == pytest.approx(1.0)


def test_pmf_matches_survival_differences():
    d = 7
    q = survival_probabilities(d) + [0.0]
    pmf = round_length_pmf(d)
    for j in range(d):
        assert pmf[j] == pytest.approx(q[j] - q[j + 1])


def test_expected_concurrency_equals_pmf_mean():
    for d in (2, 5, 10):
        pmf = round_length_pmf(d)
        mean = sum((j + 1) * p for j, p in enumerate(pmf))
        assert expected_concurrency(d) == pytest.approx(mean)


def test_single_disk_concurrency_is_one():
    assert expected_concurrency(1) == 1.0


def test_two_disks():
    # Q1=1, Q2=1/2: E = 1.5.
    assert expected_concurrency(2) == pytest.approx(1.5)


def test_concurrency_grows_like_sqrt_d():
    """The paper's headline: only O(sqrt(D)), far below D."""
    for d in (4, 16, 64, 256):
        expected = expected_concurrency(d)
        ratio = expected / math.sqrt(d)
        assert 0.8 < ratio < 1.4
    # Far below the ideal D for any sizable array.
    assert expected_concurrency(16) < 8
    assert expected_concurrency(64) < 16


def test_closed_form_error_vanishes():
    errors = [
        abs(expected_concurrency(d) - expected_concurrency_closed_form(d))
        for d in (10, 100, 1000)
    ]
    assert errors[0] > errors[1] > errors[2]


def test_invalid_d_rejected():
    with pytest.raises(ValueError):
        survival_probabilities(0)
    with pytest.raises(ValueError):
        expected_concurrency_closed_form(0)


def test_monte_carlo_agreement():
    """Simulate the game directly and compare with the formula."""
    import random

    rng = random.Random(12345)
    d = 6
    rounds = 20_000
    total = 0
    for _ in range(rounds):
        occupied = set()
        while True:
            urn = rng.randrange(d)
            if urn in occupied:
                break
            occupied.add(urn)
            if len(occupied) == d:
                break
        total += len(occupied)
    empirical = total / rounds
    assert empirical == pytest.approx(expected_concurrency(d), rel=0.02)
