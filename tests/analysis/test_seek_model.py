"""Tests for the seek-distance distribution."""

import pytest

from repro.analysis.seek_model import SeekDistanceModel, per_disk_model


def test_pmf_at_zero():
    model = SeekDistanceModel(25)
    assert model.pmf(0) == pytest.approx(1 / 25)


def test_pmf_formula():
    model = SeekDistanceModel(10)
    for i in range(1, 10):
        assert model.pmf(i) == pytest.approx(2 * (10 - i) / 100)


def test_pmf_outside_support_is_zero():
    model = SeekDistanceModel(5)
    assert model.pmf(-1) == 0.0
    assert model.pmf(5) == 0.0
    assert model.pmf(100) == 0.0


def test_pmf_sums_to_one():
    for k in (1, 2, 5, 25, 50, 100):
        model = SeekDistanceModel(k)
        assert sum(model.pmf(i) for i in model.support()) == pytest.approx(1.0)


def test_expected_moves_matches_pmf():
    for k in (2, 5, 25, 50):
        model = SeekDistanceModel(k)
        from_pmf = sum(i * model.pmf(i) for i in model.support())
        assert model.expected_moves() == pytest.approx(from_pmf)


def test_expected_moves_exact_formula():
    model = SeekDistanceModel(25)
    assert model.expected_moves() == pytest.approx((25**2 - 1) / (3 * 25))


def test_k_over_3_approximation_error_shrinks():
    small = SeekDistanceModel(5)
    large = SeekDistanceModel(100)
    small_err = abs(small.expected_moves() - small.expected_moves_approx())
    large_err = abs(large.expected_moves() - large.expected_moves_approx())
    # Absolute error is 1/(3k): decreasing in k.
    assert large_err < small_err
    assert small_err == pytest.approx(1 / 15)


def test_single_run_never_moves():
    model = SeekDistanceModel(1)
    assert model.expected_moves() == 0.0
    assert model.pmf(0) == 1.0


def test_variance_positive_and_finite():
    model = SeekDistanceModel(25)
    assert 0 < model.variance() < 25**2


def test_expected_seek_ms():
    model = SeekDistanceModel(25)
    # m=15.625, S=0.03: 15.625 * 25/3 * 0.03 = 3.906 ms.
    assert model.expected_seek_ms(15.625, 0.03) == pytest.approx(3.906, abs=0.001)


def test_per_disk_model_divides_runs():
    assert per_disk_model(25, 5).num_runs == 5
    assert per_disk_model(50, 10).num_runs == 5
    # Ceiling for non-multiples, as the paper specifies.
    assert per_disk_model(26, 5).num_runs == 6


def test_invalid_runs_rejected():
    with pytest.raises(ValueError):
        SeekDistanceModel(0)
