"""The D=2 Markov chain, solved by hand, against the implementation.

With D=2 disks (one run each, N=1) and a 3-block cache the chain has
two canonical states:

* ``(1,1)``: a depletion always empties one run; one slot was just
  freed so 2 blocks are free -- a full 2-parallel prefetch fires,
  landing in ``(2,1)``.
* ``(2,1)``: with probability 1/2 the 2-run is picked (no fetch,
  back to ``(1,1)``); with probability 1/2 the 1-run is picked, only
  1 block is free, the conservative demand-only fetch fires and the
  state stays ``(2,1)``.

Stationary distribution: pi(1,1) = 1/3, pi(2,1) = 2/3.  Fetch events
occur at rate 1/3 * 1 + 2/3 * 1/2 = 2/3 per step, so the average
parallelism is 1 / (2/3) = 1.5.
"""

import pytest

from repro.analysis.markov import (
    average_parallelism,
    enumerate_states,
    solve_stationary,
)
from repro.core.parameters import CachePolicy


def test_state_space_is_two_states():
    assert enumerate_states(2, 3) == [(1, 1), (2, 1)]


def test_stationary_distribution_matches_hand_solution():
    stationary = solve_stationary(2, 3, CachePolicy.CONSERVATIVE)
    assert stationary[(1, 1)] == pytest.approx(1 / 3, abs=1e-9)
    assert stationary[(2, 1)] == pytest.approx(2 / 3, abs=1e-9)


def test_average_parallelism_is_1_5():
    result = average_parallelism(2, 3, CachePolicy.CONSERVATIVE)
    assert result.average_parallelism == pytest.approx(1.5, abs=1e-9)
    assert result.fetch_rate == pytest.approx(2 / 3, abs=1e-9)
    assert result.num_states == 2


def test_greedy_is_identical_here():
    """With C=3 and D=2, greedy's budget after the demand block is 0 in
    the constrained state -- the policies coincide exactly."""
    conservative = average_parallelism(2, 3, CachePolicy.CONSERVATIVE)
    greedy = average_parallelism(2, 3, CachePolicy.GREEDY)
    assert greedy.average_parallelism == pytest.approx(
        conservative.average_parallelism, abs=1e-9
    )


def test_capacity_4_hand_solution():
    """C=4: states (1,1), (2,1), (2,2), (3,1).

    From (1,1): free=3>=2 after depletion, full prefetch -> (2,1)... but
    counts (0,1)+1 each = (1,2) -> canonical (2,1).  From (2,2) and
    (3,1) similar transitions; the implementation's stationary solution
    must satisfy the balance equations, checked here via parallelism
    bounds rather than a full hand inversion.
    """
    result = average_parallelism(2, 4, CachePolicy.CONSERVATIVE)
    # More cache than C=3 must raise parallelism, bounded by D=2.
    assert 1.5 < result.average_parallelism < 2.0
