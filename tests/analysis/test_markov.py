"""Tests for the Markov-chain policy analysis."""

import itertools
import random

import pytest

from repro.analysis.markov import (
    _transitions,
    average_parallelism,
    enumerate_states,
    policy_comparison,
    solve_stationary,
)
from repro.core.parameters import CachePolicy


def test_enumerate_states_small():
    states = enumerate_states(2, 3)
    assert set(states) == {(1, 1), (2, 1)}


def test_enumerate_states_canonical_and_bounded():
    states = enumerate_states(3, 7)
    for state in states:
        assert state == tuple(sorted(state, reverse=True))
        assert all(c >= 1 for c in state)
        assert sum(state) <= 7


def test_enumerate_invalid_rejected():
    with pytest.raises(ValueError):
        enumerate_states(0, 5)
    with pytest.raises(ValueError):
        enumerate_states(3, 2)


@pytest.mark.parametrize("policy", list(CachePolicy))
def test_transitions_are_distributions(policy):
    for state in enumerate_states(3, 8):
        transitions = _transitions(state, 3, 8, policy)
        assert sum(transitions.values()) == 1
        for successor in transitions:
            assert all(c >= 1 for c in successor)
            assert sum(successor) <= 8


@pytest.mark.parametrize("policy", list(CachePolicy))
def test_stationary_distribution_sums_to_one(policy):
    stationary = solve_stationary(3, 9, policy)
    assert sum(stationary.values()) == pytest.approx(1.0)
    assert all(p >= -1e-12 for p in stationary.values())


@pytest.mark.parametrize("policy", list(CachePolicy))
def test_parallelism_within_bounds(policy):
    for capacity in (4, 8, 14):
        result = average_parallelism(4, capacity, policy)
        assert 1.0 <= result.average_parallelism <= 4.0 + 1e-9


@pytest.mark.parametrize("policy", list(CachePolicy))
def test_parallelism_increases_with_cache(policy):
    values = [
        average_parallelism(4, c, policy).average_parallelism
        for c in (6, 10, 16, 24)
    ]
    assert values == sorted(values)


def test_policies_agree_at_minimum_and_converge_at_large_cache():
    # At C = D there is never room to prefetch: both degenerate to 1.
    for policy in CachePolicy:
        assert average_parallelism(3, 3, policy).average_parallelism == (
            pytest.approx(1.0)
        )
    # At large C both approach D (slowly: the chain drifts to the cache
    # boundary, so a finite cache always mixes in some partial fetches).
    cons = average_parallelism(3, 40, CachePolicy.CONSERVATIVE)
    greedy = average_parallelism(3, 40, CachePolicy.GREEDY)
    assert cons.average_parallelism == pytest.approx(3.0, abs=0.2)
    assert greedy.average_parallelism == pytest.approx(
        cons.average_parallelism, rel=0.02
    )


def test_parallelism_equals_inverse_fetch_rate():
    """Steady-state balance: one block depleted per step means one block
    fetched per step, so E[parallelism | fetch] = 1 / P(fetch)."""
    for policy in CachePolicy:
        result = average_parallelism(4, 10, policy)
        assert result.average_parallelism == pytest.approx(
            1.0 / result.fetch_rate, rel=1e-6
        )


def test_policy_comparison_rows():
    rows = policy_comparison(3, [3, 6, 9])
    assert [row["capacity"] for row in rows] == [3, 6, 9]
    for row in rows:
        assert row["advantage"] == pytest.approx(
            row["conservative"] - row["greedy"]
        )


@pytest.mark.parametrize("policy", list(CachePolicy))
def test_chain_matches_monte_carlo(policy):
    """Simulate the synchronous model directly and compare."""
    d, capacity = 3, 8
    rng = random.Random(99)
    counts = [2, 2, 2]
    fetch_events = 0
    parallelism_total = 0
    steps = 200_000
    for _ in range(steps):
        j = rng.randrange(d)
        counts[j] -= 1
        if counts[j] == 0:
            fetch_events += 1
            free = capacity - sum(counts)
            if policy is CachePolicy.CONSERVATIVE:
                if free >= d:
                    counts = [c + 1 for c in counts]
                    parallelism_total += d
                else:
                    counts[j] = 1
                    parallelism_total += 1
            else:
                counts[j] = 1
                budget = min(d - 1, free - 1)
                others = [i for i in range(d) if i != j]
                rng.shuffle(others)
                for i in others[:budget]:
                    counts[i] += 1
                parallelism_total += 1 + max(0, budget)
    empirical = parallelism_total / fetch_events
    expected = average_parallelism(d, capacity, policy).average_parallelism
    assert empirical == pytest.approx(expected, rel=0.02)
