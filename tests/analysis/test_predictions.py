"""Tests for the unified predict() front-end."""

import pytest

from repro.analysis.predictions import Prediction, PredictionQuality, predict
from repro.core.parameters import PrefetchStrategy, SimulationConfig


def config(**kwargs):
    defaults = dict(num_runs=25, num_disks=5)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


def test_no_prefetch_single_disk():
    p = predict(config(num_disks=1, strategy=PrefetchStrategy.NONE))
    assert p.quality is PredictionQuality.EXACT_MODEL
    assert p.total_s == pytest.approx(357.2, abs=0.5)
    assert "eq(1)" in p.formula


def test_no_prefetch_multi_disk():
    p = predict(config(strategy=PrefetchStrategy.NONE))
    assert p.total_s == pytest.approx(279.0, abs=0.5)
    assert "eq(3)" in p.formula


def test_intra_run_single_disk():
    p = predict(
        config(num_disks=1, strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=10)
    )
    assert p.total_s == pytest.approx(81.8, abs=0.2)
    assert "eq(2)" in p.formula


def test_intra_run_multi_disk_sync():
    p = predict(
        config(
            strategy=PrefetchStrategy.INTRA_RUN,
            prefetch_depth=30,
            synchronized=True,
        )
    )
    assert p.quality is PredictionQuality.EXACT_MODEL
    assert p.total_s == pytest.approx(58.85, abs=0.2)


def test_intra_run_multi_disk_unsync_divides_by_urn_concurrency():
    sync = predict(
        config(
            strategy=PrefetchStrategy.INTRA_RUN,
            prefetch_depth=30,
            synchronized=True,
        )
    )
    unsync = predict(
        config(strategy=PrefetchStrategy.INTRA_RUN, prefetch_depth=30)
    )
    assert unsync.quality is PredictionQuality.ASYMPTOTIC
    assert unsync.total_s == pytest.approx(sync.total_s / 2.51, rel=0.005)


def test_inter_run_sync():
    p = predict(
        config(
            strategy=PrefetchStrategy.INTER_RUN,
            prefetch_depth=10,
            cache_capacity=1200,
            synchronized=True,
        )
    )
    assert p.total_s == pytest.approx(17.6, abs=0.1)
    assert p.quality is PredictionQuality.ASYMPTOTIC


def test_inter_run_unsync_gives_lower_bound():
    p = predict(
        config(strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=10)
    )
    assert p.quality is PredictionQuality.LOWER_BOUND
    assert p.total_s == pytest.approx(10.25)


def test_finite_cpu_has_no_closed_form():
    with pytest.raises(ValueError):
        predict(config(cpu_ms_per_block=0.5))


def test_prediction_scales_with_blocks_per_run():
    full = predict(config(strategy=PrefetchStrategy.NONE))
    # m shrinks with the run, so the seek term shrinks too: the scaled
    # total must be strictly less than a pro-rata share.
    scaled = predict(config(strategy=PrefetchStrategy.NONE, blocks_per_run=500))
    assert scaled.total_s < full.total_s / 2 + 1e-9


def test_repr_is_informative():
    p = predict(config(strategy=PrefetchStrategy.NONE))
    text = repr(p)
    assert "279" in text and "exact-model" in text
