"""Tests for multi-pass merge planning and whole-sort costing."""

import pytest

from repro.analysis.passes import (
    estimate_sort_time_s,
    fan_in_for_cache,
    plan_passes,
)
from repro.core.parameters import PAPER_DISK


def test_single_pass_when_runs_fit():
    plan = plan_passes(10, 16)
    assert plan.num_passes == 1
    assert plan.passes[0].runs_in == 10
    assert plan.passes[0].runs_out == 1
    assert plan.passes[0].fan_in == 10


def test_two_passes():
    plan = plan_passes(20, 5)
    assert plan.num_passes == 2
    assert plan.passes[0].runs_out == 4
    assert plan.passes[1].fan_in == 4


def test_logarithmic_pass_count():
    plan = plan_passes(1000, 10)
    assert plan.num_passes == 3  # 1000 -> 100 -> 10 -> 1


def test_single_run_needs_no_pass():
    assert plan_passes(1, 2).num_passes == 0


def test_pass_structure_consistent():
    plan = plan_passes(37, 4)
    runs = 37
    for merge_pass in plan.passes:
        assert merge_pass.runs_in == runs
        assert merge_pass.runs_out == -(-runs // 4)
        runs = merge_pass.runs_out
    assert runs == 1


def test_plan_invalid_arguments():
    with pytest.raises(ValueError):
        plan_passes(0, 4)
    with pytest.raises(ValueError):
        plan_passes(10, 1)


def test_fan_in_for_cache():
    assert fan_in_for_cache(250, 10) == 25
    assert fan_in_for_cache(250, 1) == 250
    assert fan_in_for_cache(5, 10) == 1
    with pytest.raises(ValueError):
        fan_in_for_cache(0, 1)


def test_single_pass_estimate_matches_eq4():
    from repro.analysis.iotime import intra_run_multi_disk_block_ms

    plan, total = estimate_sort_time_s(
        initial_runs=25,
        blocks_per_run=1000,
        cache_blocks=250,
        prefetch_depth=10,
        num_disks=5,
        disk=PAPER_DISK,
    )
    assert plan.num_passes == 1
    expected = (
        intra_run_multi_disk_block_ms(25, 15.625, 10, 5, PAPER_DISK) * 25
    )
    assert total == pytest.approx(expected)


def test_more_passes_cost_more():
    small_cache = estimate_sort_time_s(
        initial_runs=100, blocks_per_run=100, cache_blocks=50,
        prefetch_depth=10, num_disks=5, disk=PAPER_DISK,
    )
    big_cache = estimate_sort_time_s(
        initial_runs=100, blocks_per_run=100, cache_blocks=1000,
        prefetch_depth=10, num_disks=5, disk=PAPER_DISK,
    )
    assert small_cache[0].num_passes > big_cache[0].num_passes
    assert small_cache[1] > big_cache[1]


def test_depth_vs_passes_tradeoff():
    """The classic tension: deeper prefetching cuts per-pass time but a
    fixed cache then supports a smaller fan-in, possibly adding passes."""
    shallow = estimate_sort_time_s(
        initial_runs=64, blocks_per_run=100, cache_blocks=64,
        prefetch_depth=1, num_disks=1, disk=PAPER_DISK,
    )
    deep = estimate_sort_time_s(
        initial_runs=64, blocks_per_run=100, cache_blocks=64,
        prefetch_depth=8, num_disks=1, disk=PAPER_DISK,
    )
    assert shallow[0].num_passes == 1
    assert deep[0].num_passes == 2
    # Here two cheap passes beat one expensive one: at N=1 every block
    # pays the full rotational latency.
    assert deep[1] < shallow[1]


def test_insufficient_cache_rejected():
    with pytest.raises(ValueError, match="cannot support"):
        estimate_sort_time_s(
            initial_runs=10, blocks_per_run=100, cache_blocks=5,
            prefetch_depth=10, num_disks=1, disk=PAPER_DISK,
        )
