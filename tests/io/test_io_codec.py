"""Tests for the binary record codec."""

import pytest

from repro.io.codec import RecordCodec
from repro.mergesort.records import Record


def test_encoded_length_is_record_bytes():
    codec = RecordCodec()
    assert len(codec.encode(Record(1, 2))) == 64


def test_roundtrip():
    codec = RecordCodec()
    for record in (Record(0, 0), Record(12345, 678), Record(-99, 1)):
        assert codec.decode(codec.encode(record)) == record


def test_negative_and_large_keys():
    codec = RecordCodec()
    for key in (-(2**62), -1, 0, 2**62):
        assert codec.decode(codec.encode(Record(key, 7))).key == key


def test_raw_byte_order_matches_key_order_for_non_negative_keys():
    codec = RecordCodec()
    a = codec.encode(Record(5, 0))
    b = codec.encode(Record(600, 0))
    assert (a < b) == (5 < 600)


def test_wrong_length_rejected():
    codec = RecordCodec()
    with pytest.raises(ValueError):
        codec.decode(b"\x00" * 63)


def test_encode_many_decode_many_roundtrip():
    codec = RecordCodec()
    records = [Record(k, k * 2) for k in range(10)]
    data = codec.encode_many(records)
    assert len(data) == 640
    assert codec.decode_many(data) == records


def test_decode_many_rejects_ragged_buffer():
    codec = RecordCodec()
    with pytest.raises(ValueError):
        codec.decode_many(b"\x00" * 100)


def test_custom_record_size():
    codec = RecordCodec(record_bytes=32)
    assert codec.payload_bytes == 16
    assert codec.decode(codec.encode(Record(9, 9))) == Record(9, 9)


def test_too_small_record_rejected():
    with pytest.raises(ValueError):
        RecordCodec(record_bytes=8)


def test_payload_is_zero_padding():
    codec = RecordCodec()
    assert codec.encode(Record(1, 1))[16:] == b"\x00" * 48
