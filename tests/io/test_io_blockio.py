"""Tests for block-granular file I/O."""

import pytest

from repro.io.blockio import BLOCK_BYTES, BlockReader, BlockWriter
from repro.io.codec import RecordCodec
from repro.mergesort.records import Record


def records(n):
    return [Record(key=i * 10, tag=i) for i in range(n)]


def write_run(path, items, **kwargs):
    with BlockWriter(path, **kwargs) as writer:
        writer.write_many(items)
        return writer


def test_roundtrip_exact_block_multiple(tmp_path):
    path = tmp_path / "run.blk"
    items = records(128)  # exactly 2 blocks of 64
    write_run(path, items)
    assert list(BlockReader(path)) == items


def test_roundtrip_partial_final_block(tmp_path):
    path = tmp_path / "run.blk"
    items = records(70)
    write_run(path, items)
    reader = BlockReader(path)
    assert list(reader) == items
    assert reader.num_blocks == 2
    assert reader.blocks_read == 2


def test_file_size_is_whole_blocks(tmp_path):
    path = tmp_path / "run.blk"
    write_run(path, records(70))
    size = path.stat().st_size
    assert size == 3 * BLOCK_BYTES  # header + 2 data blocks
    assert size % BLOCK_BYTES == 0


def test_empty_run(tmp_path):
    path = tmp_path / "run.blk"
    write_run(path, [])
    reader = BlockReader(path)
    assert reader.record_count == 0
    assert reader.num_blocks == 0
    assert list(reader) == []


def test_writer_counts(tmp_path):
    path = tmp_path / "run.blk"
    writer = write_run(path, records(130))
    assert writer.records_written == 130
    assert writer.blocks_written == 3


def test_block_exhaustion_callback_fires_per_block(tmp_path):
    path = tmp_path / "run.blk"
    write_run(path, records(130))
    events = []
    reader = BlockReader(path, on_block_exhausted=lambda: events.append(1))
    list(reader)
    assert len(events) == 3


def test_reader_rejects_wrong_codec(tmp_path):
    path = tmp_path / "run.blk"
    write_run(path, records(5))
    with pytest.raises(ValueError, match="codec expects"):
        BlockReader(path, codec=RecordCodec(record_bytes=32))


def test_reader_rejects_truncated_file(tmp_path):
    path = tmp_path / "bad.blk"
    path.write_bytes(b"\x01")
    with pytest.raises(ValueError, match="truncated"):
        BlockReader(path)


def test_writer_rejects_ragged_block_size():
    with pytest.raises(ValueError):
        BlockWriter("/tmp/unused.blk", block_bytes=1000)


def test_writer_close_idempotent(tmp_path):
    path = tmp_path / "run.blk"
    writer = BlockWriter(path)
    writer.write(Record(1, 1))
    writer.close()
    writer.close()
    with pytest.raises(ValueError):
        writer.write(Record(2, 2))


def test_reader_reiterable(tmp_path):
    path = tmp_path / "run.blk"
    items = records(10)
    write_run(path, items)
    reader = BlockReader(path)
    assert list(reader) == items
    assert list(reader) == items  # fresh file handle per iteration


def test_custom_block_size(tmp_path):
    path = tmp_path / "run.blk"
    codec = RecordCodec(record_bytes=32)
    items = records(20)
    with BlockWriter(path, codec=codec, block_bytes=128) as writer:
        writer.write_many(items)
    reader = BlockReader(path, codec=codec, block_bytes=128)
    assert reader.records_per_block == 4
    assert list(reader) == items
    assert reader.num_blocks == 5
