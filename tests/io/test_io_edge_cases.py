"""Edge cases and fault handling in the file-backed stack."""

import pytest

from repro.io.blockio import BLOCK_BYTES, BlockReader, BlockWriter
from repro.io.codec import RecordCodec
from repro.io.filesort import FileSorter, verify_sorted_file
from repro.mergesort.records import Record


def test_reader_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        BlockReader(tmp_path / "nope.blk")


def test_reader_rejects_header_claiming_wrong_record_size(tmp_path):
    path = tmp_path / "forged.blk"
    with BlockWriter(path, codec=RecordCodec(record_bytes=32)) as writer:
        writer.write(Record(1, 1))
    with pytest.raises(ValueError, match="codec expects"):
        BlockReader(path)  # default 64-byte codec


def test_reader_header_only_zero_records(tmp_path):
    import struct

    path = tmp_path / "empty.blk"
    header = struct.pack(">QI", 0, 64)  # 0 records of 64 bytes
    path.write_bytes(header + b"\x00" * (BLOCK_BYTES - len(header)))
    reader = BlockReader(path)
    assert reader.record_count == 0
    assert list(reader) == []


def test_reader_rejects_zeroed_header(tmp_path):
    """An all-zero header (record size 0) is not a valid run file."""
    path = tmp_path / "zeroed.blk"
    path.write_bytes(b"\x00" * BLOCK_BYTES)
    with pytest.raises(ValueError, match="codec expects"):
        BlockReader(path)


def test_exactly_one_record(tmp_path):
    path = tmp_path / "one.blk"
    with BlockWriter(path) as writer:
        writer.write(Record(42, 0))
    reader = BlockReader(path)
    assert reader.num_blocks == 1
    assert [r.key for r in reader] == [42]


def test_writer_overwrites_existing_file(tmp_path):
    path = tmp_path / "run.blk"
    with BlockWriter(path) as writer:
        writer.write_many(Record(k, k) for k in range(100))
    with BlockWriter(path) as writer:
        writer.write(Record(7, 7))
    assert [r.key for r in BlockReader(path)] == [7]


def test_sorter_memory_of_one_record(tmp_path):
    """Degenerate memory: every record becomes its own run."""
    path = tmp_path / "input.blk"
    with BlockWriter(path) as writer:
        writer.write_many(Record(k, i) for i, k in enumerate([3, 1, 2]))
    sorter = FileSorter(memory_records=1, temp_dirs=[tmp_path / "d"])
    stats = sorter.sort_file(path, tmp_path / "out.blk")
    assert stats.initial_runs == 3
    assert [r.key for r in BlockReader(tmp_path / "out.blk")] == [1, 2, 3]


def test_sorter_all_equal_records(tmp_path):
    path = tmp_path / "input.blk"
    with BlockWriter(path) as writer:
        writer.write_many(Record(5, i) for i in range(200))
    sorter = FileSorter(memory_records=64, temp_dirs=[tmp_path / "d"])
    stats = sorter.sort_file(path, tmp_path / "out.blk")
    assert stats.records == 200
    tags = [r.tag for r in BlockReader(tmp_path / "out.blk")]
    assert tags == list(range(200))  # stable by tag


def test_sorter_empty_input_produces_valid_empty_output(tmp_path):
    """Zero records sort to a well-formed, loadable, empty output file."""
    path = tmp_path / "empty.blk"
    with BlockWriter(path):
        pass  # valid header, no records
    sorter = FileSorter(memory_records=16, temp_dirs=[tmp_path / "d"])
    stats = sorter.sort_file(path, tmp_path / "out.blk")
    assert stats.records == 0
    assert stats.runs == 0
    assert stats.initial_runs == 0
    assert stats.run_blocks == []
    assert stats.output_blocks == 0
    assert stats.bytes_read == 0
    assert stats.bytes_written == BLOCK_BYTES  # the header block
    assert stats.depletion_trace == []
    reader = BlockReader(tmp_path / "out.blk")
    assert reader.record_count == 0
    assert list(reader) == []
    assert verify_sorted_file(tmp_path / "out.blk") == 0


def test_sorter_empty_output_is_itself_sortable(tmp_path):
    """The empty output round-trips through another sort unchanged."""
    path = tmp_path / "empty.blk"
    with BlockWriter(path):
        pass
    sorter = FileSorter(memory_records=4, temp_dirs=[tmp_path / "d"])
    sorter.sort_file(path, tmp_path / "out1.blk")
    stats = sorter.sort_file(tmp_path / "out1.blk", tmp_path / "out2.blk")
    assert stats.records == 0
    assert verify_sorted_file(tmp_path / "out2.blk") == 0


def test_sorter_negative_keys(tmp_path):
    path = tmp_path / "input.blk"
    keys = [0, -5, 3, -(2**40), 2**40, -1]
    with BlockWriter(path) as writer:
        writer.write_many(Record(k, i) for i, k in enumerate(keys))
    FileSorter(memory_records=2, temp_dirs=[tmp_path / "d"]).sort_file(
        path, tmp_path / "out.blk"
    )
    assert [r.key for r in BlockReader(tmp_path / "out.blk")] == sorted(keys)


def test_spill_directories_created_on_demand(tmp_path):
    deep = tmp_path / "does" / "not" / "exist"
    path = tmp_path / "input.blk"
    with BlockWriter(path) as writer:
        writer.write_many(Record(k, k) for k in range(100))
    sorter = FileSorter(memory_records=10, temp_dirs=[deep])
    sorter.sort_file(path, tmp_path / "out.blk")
    assert deep.exists()
