"""Tests for the bounded-memory file sorter."""

import random

import pytest

from repro.io.blockio import BlockReader, BlockWriter
from repro.io.filesort import (
    FileSorter,
    verify_sorted_file,
    write_random_input,
)
from repro.mergesort.records import Record


def make_input(tmp_path, count, seed=1):
    path = tmp_path / "input.blk"
    write_random_input(path, count, seed=seed)
    return path


def make_sorter(tmp_path, memory_records=64, dirs=2):
    temp_dirs = [tmp_path / f"disk{i}" for i in range(dirs)]
    return FileSorter(memory_records=memory_records, temp_dirs=temp_dirs)


def test_sorts_a_file(tmp_path):
    input_path = make_input(tmp_path, 500)
    output_path = tmp_path / "sorted.blk"
    stats = make_sorter(tmp_path).sort_file(input_path, output_path)
    assert stats.records == 500
    assert verify_sorted_file(output_path) == 500


def test_output_is_permutation_of_input(tmp_path):
    input_path = make_input(tmp_path, 300)
    output_path = tmp_path / "sorted.blk"
    make_sorter(tmp_path).sort_file(input_path, output_path)
    original = sorted(BlockReader(input_path))
    result = list(BlockReader(output_path))
    assert result == original


def test_run_count_matches_memory(tmp_path):
    input_path = make_input(tmp_path, 500)
    stats = make_sorter(tmp_path, memory_records=64).sort_file(
        input_path, tmp_path / "out.blk"
    )
    assert stats.runs == 8  # ceil(500/64)


def test_runs_distributed_round_robin_across_dirs(tmp_path):
    input_path = make_input(tmp_path, 256)
    sorter = make_sorter(tmp_path, memory_records=64, dirs=2)
    # Capture spill locations before cleanup by spying on _spill.
    spilled = []
    original_spill = sorter._spill

    def spy(load, run_index):
        path = original_spill(load, run_index)
        spilled.append(path.parent.name)
        return path

    sorter._spill = spy
    sorter.sort_file(input_path, tmp_path / "out.blk")
    assert spilled == ["disk0", "disk1", "disk0", "disk1"]


def test_temporary_runs_cleaned_up(tmp_path):
    input_path = make_input(tmp_path, 300)
    sorter = make_sorter(tmp_path)
    sorter.sort_file(input_path, tmp_path / "out.blk")
    leftovers = [
        p for d in sorter.temp_dirs if d.exists() for p in d.iterdir()
    ]
    assert leftovers == []


def test_depletion_trace_covers_every_run_block(tmp_path):
    input_path = make_input(tmp_path, 640)
    stats = make_sorter(tmp_path, memory_records=128).sort_file(
        input_path, tmp_path / "out.blk"
    )
    assert len(stats.depletion_trace) == stats.total_run_blocks
    for run in range(stats.runs):
        expected = stats.run_blocks[run]
        assert stats.depletion_trace.count(run) == expected


def test_single_memory_load_still_works(tmp_path):
    input_path = make_input(tmp_path, 50)
    stats = make_sorter(tmp_path, memory_records=1000).sort_file(
        input_path, tmp_path / "out.blk"
    )
    assert stats.runs == 1
    assert verify_sorted_file(tmp_path / "out.blk") == 50


def test_duplicate_keys_sorted_stably_by_tag(tmp_path):
    path = tmp_path / "dups.blk"
    with BlockWriter(path) as writer:
        for tag in range(100):
            writer.write(Record(key=7, tag=tag))
    make_sorter(tmp_path, memory_records=16).sort_file(
        path, tmp_path / "out.blk"
    )
    tags = [record.tag for record in BlockReader(tmp_path / "out.blk")]
    assert tags == list(range(100))


def test_empty_input_sorts_to_empty_output(tmp_path):
    path = tmp_path / "empty.blk"
    with BlockWriter(path):
        pass
    stats = make_sorter(tmp_path).sort_file(path, tmp_path / "out.blk")
    assert stats.records == 0
    assert stats.runs == 0
    assert BlockReader(tmp_path / "out.blk").record_count == 0


def test_invalid_construction(tmp_path):
    with pytest.raises(ValueError):
        FileSorter(memory_records=0, temp_dirs=[tmp_path])
    with pytest.raises(ValueError):
        FileSorter(memory_records=10, temp_dirs=[])


def test_byte_accounting(tmp_path):
    input_path = make_input(tmp_path, 128)
    stats = make_sorter(tmp_path, memory_records=64).sort_file(
        input_path, tmp_path / "out.blk"
    )
    # 2 runs x (1 header + 1 data block); output 1 header + 2 data.
    assert stats.bytes_read == 2 * 2 * 4096
    assert stats.bytes_written == 3 * 4096


def test_verify_sorted_file_detects_disorder(tmp_path):
    path = tmp_path / "bad.blk"
    with BlockWriter(path) as writer:
        writer.write(Record(2, 0))
        writer.write(Record(1, 1))
    with pytest.raises(AssertionError, match="unsorted"):
        verify_sorted_file(path)


def test_multi_pass_respects_fan_in(tmp_path):
    input_path = make_input(tmp_path, 1000)
    sorter = FileSorter(
        memory_records=64,
        temp_dirs=[tmp_path / "d0", tmp_path / "d1"],
        max_fan_in=4,
    )
    stats = sorter.sort_file(input_path, tmp_path / "out.blk")
    assert stats.initial_runs == 16
    assert stats.merge_passes == 2  # 16 -> 4 -> 1
    assert stats.runs <= 4  # final pass fan-in
    assert verify_sorted_file(tmp_path / "out.blk") == 1000


def test_multi_pass_equals_single_pass_output(tmp_path):
    input_path = make_input(tmp_path, 600, seed=8)
    single = FileSorter(memory_records=50, temp_dirs=[tmp_path / "s"])
    multi = FileSorter(
        memory_records=50, temp_dirs=[tmp_path / "m"], max_fan_in=3
    )
    single.sort_file(input_path, tmp_path / "single.blk")
    multi_stats = multi.sort_file(input_path, tmp_path / "multi.blk")
    assert multi_stats.merge_passes > 1
    assert list(BlockReader(tmp_path / "single.blk")) == list(
        BlockReader(tmp_path / "multi.blk")
    )


def test_multi_pass_cleans_intermediate_runs(tmp_path):
    input_path = make_input(tmp_path, 600)
    sorter = FileSorter(
        memory_records=50, temp_dirs=[tmp_path / "d"], max_fan_in=3
    )
    sorter.sort_file(input_path, tmp_path / "out.blk")
    leftovers = [
        p for d in sorter.temp_dirs if d.exists() for p in d.iterdir()
    ]
    assert leftovers == []


def test_invalid_fan_in_rejected(tmp_path):
    with pytest.raises(ValueError):
        FileSorter(memory_records=10, temp_dirs=[tmp_path], max_fan_in=1)


def test_large_sort_with_many_runs(tmp_path):
    rng = random.Random(9)
    path = tmp_path / "big.blk"
    with BlockWriter(path) as writer:
        for tag in range(5000):
            writer.write(Record(key=rng.randrange(10**9), tag=tag))
    stats = make_sorter(tmp_path, memory_records=256, dirs=3).sort_file(
        path, tmp_path / "out.blk"
    )
    assert stats.runs == 20
    assert verify_sorted_file(tmp_path / "out.blk") == 5000
