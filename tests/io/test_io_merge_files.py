"""Tests for merge_files and the sort/gen CLI commands."""

import pytest

from repro.cli import main
from repro.io.blockio import BlockReader, BlockWriter
from repro.io.filesort import merge_files, verify_sorted_file, write_random_input
from repro.mergesort.records import Record


def write_sorted_run(path, keys, tag_start=0):
    records = sorted(Record(k, tag_start + i) for i, k in enumerate(keys))
    with BlockWriter(path) as writer:
        writer.write_many(records)
    return records


def test_merge_two_files(tmp_path):
    a = write_sorted_run(tmp_path / "a.blk", range(0, 100, 2))
    b = write_sorted_run(tmp_path / "b.blk", range(1, 101, 2), tag_start=100)
    out = tmp_path / "out.blk"
    stats = merge_files([tmp_path / "a.blk", tmp_path / "b.blk"], out)
    assert stats.records == 100
    merged = list(BlockReader(out))
    assert merged == sorted(a + b)
    assert verify_sorted_file(out) == 100


def test_merge_single_file_is_copy(tmp_path):
    records = write_sorted_run(tmp_path / "a.blk", [5, 6, 7])
    stats = merge_files([tmp_path / "a.blk"], tmp_path / "out.blk")
    assert stats.records == 3
    assert list(BlockReader(tmp_path / "out.blk")) == records


def test_merge_records_depletion_trace(tmp_path):
    write_sorted_run(tmp_path / "a.blk", range(0, 256))  # 4 blocks
    write_sorted_run(tmp_path / "b.blk", range(1000, 1064), tag_start=500)
    stats = merge_files(
        [tmp_path / "a.blk", tmp_path / "b.blk"], tmp_path / "out.blk"
    )
    assert stats.run_blocks == [4, 1]
    assert stats.depletion_trace == [0, 0, 0, 0, 1]


def test_merge_no_inputs_rejected(tmp_path):
    with pytest.raises(ValueError):
        merge_files([], tmp_path / "out.blk")


def test_cli_gen_and_sort_roundtrip(tmp_path, capsys):
    input_path = tmp_path / "input.blk"
    output_path = tmp_path / "sorted.blk"
    assert main(["gen", str(input_path), "-n", "3000", "--seed", "4"]) == 0
    code = main([
        "sort", str(input_path), str(output_path),
        "--memory-records", "256",
        "--temp-dir", str(tmp_path / "d0"),
        "--temp-dir", str(tmp_path / "d1"),
        "--fan-in", "3",
        "--verify",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "sorted 3000 records" in out
    assert "verified: 3000 records in order" in out
    assert "merge pass(es)" in out
    assert verify_sorted_file(output_path) == 3000


def test_cli_sort_default_spill_dir(tmp_path, capsys):
    input_path = tmp_path / "input.blk"
    write_random_input(input_path, 500, seed=1)
    output_path = tmp_path / "out.blk"
    assert main(["sort", str(input_path), str(output_path),
                 "--memory-records", "100"]) == 0
    assert verify_sorted_file(output_path) == 500
