"""Strategy conformance: every planner honors the allocation discipline.

One parametrized suite asserting the buffer-allocation invariants —
occupancy never exceeds the pool, no block is freed twice — for every
registered strategy variant, against *both* simulator kernels and the
real-I/O backend.  The simulated cache and the real pool raise
:class:`~repro.core.cache.CacheAccountingError` on any violation, so a
completed run plus the reported occupancy statistics are the proof.
"""

import pytest

from repro.core.cache import CacheAccountingError
from repro.core.parameters import (
    CachePolicy,
    PrefetchStrategy,
    SimulationConfig,
    VictimSelector,
)
from repro.core.simulator import MergeSimulation
from repro.realio import RealIOConfig, RealMerge, generate_dataset

#: Every registered strategy variant: (id, strategy, policy, adaptive).
VARIANTS = [
    ("none", PrefetchStrategy.NONE, CachePolicy.CONSERVATIVE, False),
    ("intra-run", PrefetchStrategy.INTRA_RUN, CachePolicy.CONSERVATIVE, False),
    (
        "inter-run-conservative",
        PrefetchStrategy.INTER_RUN,
        CachePolicy.CONSERVATIVE,
        False,
    ),
    ("inter-run-greedy", PrefetchStrategy.INTER_RUN, CachePolicy.GREEDY, False),
    (
        "inter-run-adaptive",
        PrefetchStrategy.INTER_RUN,
        CachePolicy.CONSERVATIVE,
        True,
    ),
]

RUNS = 5
DISKS = 2
BLOCKS = 40


@pytest.mark.parametrize(
    "name,strategy,policy,adaptive", VARIANTS, ids=[v[0] for v in VARIANTS]
)
@pytest.mark.parametrize("kernel", ["reference", "fast"])
def test_simulated_strategies_respect_the_pool(
    name, strategy, policy, adaptive, kernel
):
    config = SimulationConfig(
        num_runs=RUNS,
        num_disks=DISKS,
        strategy=strategy,
        prefetch_depth=4,
        blocks_per_run=BLOCKS,
        cache_policy=policy,
        adaptive_depth=adaptive,
        trials=2,
        base_seed=23,
        kernel=kernel,
    )
    aggregate = MergeSimulation(config).run()
    capacity = config.resolved_cache_capacity
    # The simulator installs the initial N blocks per run at zero cost;
    # only merge-phase fetches are counted.
    preload = RUNS * config.effective_depth
    for metrics in aggregate.trials:
        assert metrics.blocks_depleted == RUNS * BLOCKS
        assert metrics.cache_min_free >= 0
        assert metrics.cache_peak_occupancy <= capacity
        assert metrics.blocks_fetched == metrics.blocks_depleted - preload


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    root = tmp_path_factory.mktemp("realio-conf")
    return generate_dataset(
        root, num_runs=RUNS, num_disks=DISKS, blocks_per_run=8, seed=29
    )


@pytest.mark.parametrize(
    "name,strategy,policy,adaptive",
    [v for v in VARIANTS if not v[3]],  # realio planners are non-adaptive
    ids=[v[0] for v in VARIANTS if not v[3]],
)
def test_real_backend_strategies_respect_the_pool(
    dataset, name, strategy, policy, adaptive
):
    config = RealIOConfig(
        strategy=strategy, prefetch_depth=3, cache_policy=policy
    )
    merge = RealMerge(dataset, config, seed=31)
    result = merge.run()  # run() itself re-checks every pool invariant
    assert result.sorted_ok
    capacity = config.resolved_cache_capacity(dataset)
    assert result.metrics.cache_min_free >= 0
    assert result.metrics.cache_peak_occupancy <= capacity
    assert result.metrics.blocks_fetched == dataset.total_blocks
    # The drained pool refuses a double free: every block was released
    # exactly once.
    with pytest.raises(CacheAccountingError, match="no resident block"):
        merge.cache.deplete(0)
    merge.cache.check()
