"""BufferPool invariants: the thread-safe twin of BlockCache."""

import pytest

from repro.core.cache import CacheAccountingError
from repro.realio.pool import BufferPool


def make_pool(capacity=8, runs=(4, 4)):
    return BufferPool(capacity, list(runs))


def test_reserve_tracks_free_space():
    pool = make_pool(capacity=8)
    assert pool.free == 8
    pool.reserve(0, 3)
    assert pool.free == 5
    assert pool.occupied_or_reserved == 3
    assert pool.can_reserve(5)
    assert not pool.can_reserve(6)


def test_reserve_over_free_space_raises():
    pool = make_pool(capacity=2)
    with pytest.raises(CacheAccountingError, match="exceeds free space"):
        pool.reserve(0, 3)


def test_reserve_past_end_of_run_raises():
    pool = make_pool(capacity=8, runs=(2, 2))
    with pytest.raises(CacheAccountingError, match="only .* blocks left"):
        pool.reserve(0, 3)


def test_reserve_zero_raises():
    pool = make_pool()
    with pytest.raises(CacheAccountingError, match="at least one block"):
        pool.reserve(0, 0)


def test_arrival_without_reservation_raises():
    pool = make_pool()
    with pytest.raises(CacheAccountingError, match="nothing in flight"):
        pool.block_arrived(0, 0, b"x")


def test_arrival_out_of_order_raises():
    pool = make_pool()
    pool.reserve(0, 2)
    with pytest.raises(CacheAccountingError, match="out of order"):
        pool.block_arrived(0, 1, b"x")  # block 0 must arrive first


def test_block_lifecycle_reserve_arrive_peek_deplete():
    pool = make_pool(capacity=4, runs=(3,))
    pool.reserve(0, 2)
    pool.block_arrived(0, 0, b"first")
    pool.block_arrived(0, 1, b"second")
    assert pool.peek(0) == b"first"
    assert pool.free == 2  # both blocks resident, space still claimed
    assert pool.deplete(0) == 0
    assert pool.free == 3
    assert pool.peek(0) == b"second"
    assert pool.deplete(0) == 1
    assert pool.free == 4
    pool.check()


def test_deplete_with_nothing_resident_raises():
    pool = make_pool()
    with pytest.raises(CacheAccountingError, match="no resident block"):
        pool.deplete(0)
    # Reserved-but-not-arrived blocks are not depletable either.
    pool.reserve(0, 1)
    with pytest.raises(CacheAccountingError, match="no resident block"):
        pool.deplete(0)


def test_peek_with_nothing_resident_raises():
    pool = make_pool()
    with pytest.raises(CacheAccountingError, match="no resident block"):
        pool.peek(0)


def test_wait_for_arrival_of_unissued_block_raises():
    pool = make_pool()
    with pytest.raises(CacheAccountingError, match="never issued"):
        pool.wait_for_arrival(0, 0, timeout_ms=10)


def test_wait_for_arrival_timeout_is_a_deadlock_guard():
    pool = make_pool()
    pool.reserve(0, 1)
    with pytest.raises(TimeoutError, match="did not arrive"):
        pool.wait_for_arrival(0, 0, timeout_ms=5)


def test_wait_for_arrival_returns_when_resident():
    pool = make_pool()
    pool.reserve(0, 1)
    pool.block_arrived(0, 0, b"x")
    pool.wait_for_arrival(0, 0, timeout_ms=5)  # no exception


def test_occupancy_statistics():
    pool = make_pool(capacity=4, runs=(4,))
    pool.reserve(0, 3)
    assert pool.min_free == 1
    assert pool.peak_occupancy == 3
    for i in range(3):
        pool.block_arrived(0, i, b"x")
        pool.deplete(0)
    # Statistics are high-water marks; draining does not lower them.
    assert pool.min_free == 1
    assert pool.peak_occupancy == 3


def test_check_detects_space_leak():
    pool = make_pool()
    pool._free += 1  # corrupt the accounting directly
    with pytest.raises(CacheAccountingError, match="space leak"):
        pool.check()


def test_capacity_must_be_positive():
    with pytest.raises(CacheAccountingError):
        BufferPool(0, [1])
