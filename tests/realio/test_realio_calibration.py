"""Fitting effective (S, R, T) from measured reads, and the probe."""

import pytest

from repro.analysis.calibration import (
    MIN_TRANSFER_MS,
    ReadObservation,
    fit_service_model,
)
from repro.realio import (
    ReadSample,
    calibrate,
    generate_dataset,
    observations_from_samples,
    probe_reads,
)

# The paper's constants (Table 1), used as ground truth for recovery.
S, R, T = 0.03, 8.33, 2.05


def synthetic(seek, blocks):
    return ReadObservation(
        seek_cylinders=seek,
        blocks=blocks,
        service_ms=S * seek + R + T * blocks,
    )


class StepClock:
    """Deterministic ms clock: advances only via the paired sleep."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def sleep(self, ms):
        self.now += ms


def test_full_fit_recovers_exact_constants():
    observations = [
        synthetic(seek, blocks)
        for seek in (0, 5, 40, 200)
        for blocks in (1, 2, 4, 8)
    ]
    fit = fit_service_model(observations)
    assert fit.seek_ms_per_cylinder == pytest.approx(S, rel=1e-9)
    assert fit.avg_rotational_latency_ms == pytest.approx(R, rel=1e-9)
    assert fit.transfer_ms_per_block == pytest.approx(T, rel=1e-9)
    assert fit.max_relative_residual == pytest.approx(0.0, abs=1e-9)


def test_degenerate_seek_column_falls_back_to_two_parameters():
    # Every read at the same position: tmpfs-style, no seek signal.
    observations = [
        ReadObservation(0, blocks, R + T * blocks) for blocks in (1, 2, 4, 8)
    ]
    fit = fit_service_model(observations)
    assert fit.seek_ms_per_cylinder == 0.0
    assert fit.avg_rotational_latency_ms == pytest.approx(R, rel=1e-9)
    assert fit.transfer_ms_per_block == pytest.approx(T, rel=1e-9)


def test_single_read_size_falls_back_to_mean_per_block():
    observations = [ReadObservation(0, 2, 5.0) for _ in range(4)]
    fit = fit_service_model(observations)
    assert fit.seek_ms_per_cylinder == 0.0
    assert fit.avg_rotational_latency_ms == 0.0
    assert fit.transfer_ms_per_block == pytest.approx(2.5)


def test_negative_intercept_is_clamped_to_zero():
    # service = 2b - 1 solves to R = -1; the model clamps to R = 0 and
    # reports residuals against the clamped model.
    observations = [
        ReadObservation(0, blocks, 2.0 * blocks - 1.0)
        for blocks in (1, 2, 4, 8)
    ]
    fit = fit_service_model(observations)
    assert fit.avg_rotational_latency_ms == 0.0
    assert fit.transfer_ms_per_block >= MIN_TRANSFER_MS
    assert fit.max_relative_residual > 0.0


def test_fit_input_validation():
    with pytest.raises(ValueError, match="at least three"):
        fit_service_model([synthetic(0, 1), synthetic(0, 2)])
    with pytest.raises(ValueError, match="positive service"):
        fit_service_model([
            synthetic(0, 1), synthetic(0, 2), ReadObservation(0, 4, 0.0),
        ])


def test_observations_from_samples_drop_zero_services():
    samples = [
        ReadSample(0, 3, 2, 4.0, 0.0, True),
        ReadSample(1, 0, 1, 0.0, 0.0, False),  # unresolvable timing
    ]
    observations = observations_from_samples(samples)
    assert len(observations) == 1
    assert observations[0].seek_cylinders == 3
    assert observations[0].blocks == 2
    assert observations[0].service_ms == 4.0


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    root = tmp_path_factory.mktemp("realio-cal")
    return generate_dataset(
        root, num_runs=4, num_disks=2, blocks_per_run=16, seed=3
    )


def test_probe_with_fake_clock_measures_the_throttle(dataset):
    clock = StepClock()
    observations = probe_reads(
        dataset,
        rounds=2,
        throttle_ms_per_block=2.0,
        clock=clock,
        sleep=clock.sleep,
    )
    # With a clock that only the throttle advances, each probe's service
    # is exactly 2 ms per block read.
    assert observations
    for obs in observations:
        assert obs.service_ms == pytest.approx(2.0 * obs.blocks)
    fit = fit_service_model(observations)
    assert fit.transfer_ms_per_block == pytest.approx(2.0, rel=1e-6)
    assert fit.seek_ms_per_cylinder == pytest.approx(0.0, abs=1e-9)


def test_calibrate_report_round_trip(dataset):
    clock = StepClock()
    report = calibrate(
        dataset,
        throttle_ms_per_block=1.0,
        clock=clock,
        sleep=clock.sleep,
    )
    assert report.num_observations > 0
    data = report.to_dict()
    assert data["transfer_ms_per_block"] == pytest.approx(1.0, rel=1e-6)
    assert data["throttle_ms_per_block"] == 1.0
    params = report.disk_parameters
    assert params.transfer_ms_per_block == report.calibration.transfer_ms_per_block
    assert "Calibration" in report.render()


def test_probe_input_validation(dataset):
    with pytest.raises(ValueError, match="probe round"):
        probe_reads(dataset, rounds=0)
    with pytest.raises(ValueError, match="positive"):
        probe_reads(dataset, counts=(0,))
