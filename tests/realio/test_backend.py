"""End-to-end coverage of the real-I/O merge backend."""

import pytest

from repro.core.parameters import PrefetchStrategy
from repro.io.blockio import BlockReader
from repro.obs.collector import TraceSession
from repro.obs.events import EventKind
from repro.realio import (
    RealIOConfig,
    RealMerge,
    generate_dataset,
    run_real_merge,
)

RUNS = 4
DISKS = 2
BLOCKS = 8


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    root = tmp_path_factory.mktemp("realio-ds")
    return generate_dataset(
        root, num_runs=RUNS, num_disks=DISKS, blocks_per_run=BLOCKS, seed=7
    )


def test_dataset_geometry(dataset):
    assert dataset.num_runs == RUNS
    assert dataset.num_disks == DISKS
    assert dataset.blocks_per_run == BLOCKS
    assert dataset.total_blocks == RUNS * BLOCKS
    for run, path in enumerate(dataset.run_paths):
        assert path.parent.name == f"disk-{run % DISKS}"
        reader = BlockReader(path)
        records = list(reader)
        assert records == sorted(records)


@pytest.mark.parametrize("strategy", list(PrefetchStrategy))
def test_merge_sorts_and_accounts_every_block(dataset, strategy):
    config = RealIOConfig(strategy=strategy, prefetch_depth=2)
    result = RealMerge(dataset, config, seed=11).run()
    assert result.sorted_ok
    assert result.records_merged == dataset.total_records
    metrics = result.metrics
    assert metrics.blocks_depleted == dataset.total_blocks
    assert metrics.blocks_fetched == dataset.total_blocks
    assert metrics.cache_min_free >= 0
    assert metrics.cache_peak_occupancy <= config.resolved_cache_capacity(
        dataset
    )
    assert sum(s.blocks for s in metrics.drive_stats) == dataset.total_blocks


def test_demand_counts_order_as_the_paper_predicts(dataset):
    """Prefetching removes demand situations.  Exact counts are timing-
    dependent (a block may or may not land before its run drains), but
    without prefetching every post-preload block is a demand — strictly
    more than either prefetching strategy sees."""
    demands = {}
    for strategy in PrefetchStrategy:
        config = RealIOConfig(strategy=strategy, prefetch_depth=4)
        result = RealMerge(dataset, config, seed=3).run()
        demands[strategy] = result.metrics.demand_situations
    # NONE holds one block per run: after the preload, every one of the
    # remaining blocks is a demand situation, deterministically.
    assert demands[PrefetchStrategy.NONE] == dataset.total_blocks - RUNS
    assert demands[PrefetchStrategy.NONE] > demands[PrefetchStrategy.INTRA_RUN]
    assert demands[PrefetchStrategy.NONE] > demands[PrefetchStrategy.INTER_RUN]


def test_trace_busy_spans_match_drive_stats(dataset):
    session = TraceSession("realio-test")
    outcome = run_real_merge(
        dataset,
        RealIOConfig(strategy=PrefetchStrategy.INTER_RUN, prefetch_depth=2),
        trials=2,
        base_seed=5,
        session=session,
    )
    assert outcome.sorted_ok
    assert len(session.trials) == 2
    for trial, metrics in zip(session.trials, outcome.trials):
        for disk, stats in enumerate(metrics.drive_stats):
            assert trial.service_busy_ms(disk) == pytest.approx(
                stats.busy_ms, abs=1e-6
            )
        kinds = {event.kind for event in trial.events}
        assert EventKind.PREFETCH in kinds


def test_output_file_is_written_sorted(dataset, tmp_path):
    out = tmp_path / "sorted.blk"
    outcome = run_real_merge(
        dataset,
        RealIOConfig(strategy=PrefetchStrategy.INTRA_RUN),
        output_path=out,
    )
    assert outcome.sorted_ok
    records = list(BlockReader(out))
    assert len(records) == dataset.total_records
    assert records == sorted(records)
    assert outcome.trials[0].blocks_written > 0


def test_undersized_pool_is_rejected_up_front(dataset):
    config = RealIOConfig(
        strategy=PrefetchStrategy.INTRA_RUN,
        prefetch_depth=2,
        cache_capacity=RUNS * 2 - 1,  # one short of the preload floor
    )
    with pytest.raises(ValueError, match="cannot hold the preload"):
        RealMerge(dataset, config)


def test_throttle_slows_reads_and_scales_busy_time(dataset):
    fast = RealMerge(
        dataset, RealIOConfig(strategy=PrefetchStrategy.INTRA_RUN)
    ).run()
    slow = RealMerge(
        dataset,
        RealIOConfig(
            strategy=PrefetchStrategy.INTRA_RUN, throttle_ms_per_block=0.5
        ),
    ).run()
    assert slow.sorted_ok
    floor = 0.5 * dataset.total_blocks / dataset.num_disks
    slow_busy = sum(s.busy_ms for s in slow.metrics.drive_stats)
    fast_busy = sum(s.busy_ms for s in fast.metrics.drive_stats)
    assert slow_busy >= floor
    assert slow_busy > fast_busy


def test_config_validation():
    with pytest.raises(ValueError, match="prefetch_depth"):
        RealIOConfig(prefetch_depth=0)
    with pytest.raises(ValueError, match="throttle"):
        RealIOConfig(throttle_ms_per_block=-1.0)


def test_none_strategy_uses_single_block_depth(dataset):
    config = RealIOConfig(strategy=PrefetchStrategy.NONE, prefetch_depth=4)
    assert config.effective_depth == 1
    assert config.resolved_cache_capacity(dataset) == dataset.num_runs
