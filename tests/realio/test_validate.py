"""The sim-vs-real validation loop and its report."""

import json

import pytest

from repro.core.parameters import PrefetchStrategy
from repro.obs.collector import TraceSession
from repro.realio import generate_dataset, run_validation
from repro.realio.validate import StrategyOutcome, _ordering


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    root = tmp_path_factory.mktemp("realio-val")
    dataset = generate_dataset(
        root, num_runs=4, num_disks=2, blocks_per_run=8, seed=13
    )
    session = TraceSession("validate-test")
    result = run_validation(
        dataset,
        prefetch_depth=2,
        trials=1,
        base_seed=13,
        throttle_ms_per_block=0.1,
        session=session,
    )
    return result


def test_validation_produces_one_outcome_per_strategy(report):
    strategies = [outcome.strategy for outcome in report.outcomes]
    assert strategies == [
        PrefetchStrategy.INTRA_RUN, PrefetchStrategy.INTER_RUN
    ]
    for outcome in report.outcomes:
        assert outcome.measured_total_ms > 0
        assert outcome.predicted_total_ms > 0
        assert outcome.measured_demand_situations > 0
        assert outcome.predicted_demand_situations > 0


def test_demand_ordering_is_structural(report):
    """Both executors run identical planner logic, so demand-situation
    counts must rank the strategies the same way — always."""
    assert report.demand_ordering_agrees


def test_calibration_came_from_merge_traffic(report):
    assert report.calibration.num_observations > 0
    # The 0.1 ms/block throttle dominates tmpfs reads, so the fitted
    # per-block transfer time is at least that.
    assert report.calibration.calibration.transfer_ms_per_block >= 0.05


def test_report_serializes_and_saves(report, tmp_path):
    data = report.to_dict()
    assert data["prefetch_depth"] == 2
    assert len(data["outcomes"]) == 2
    assert set(data) >= {
        "calibration", "stall_ordering_agrees", "demand_ordering_agrees",
        "total_ordering_agrees", "agrees",
    }
    path = tmp_path / "report.json"
    report.save(path)
    assert json.loads(path.read_text()) == data
    from repro.realio import ValidationReport

    restored = ValidationReport.from_dict(data)
    assert restored.agrees == report.agrees
    assert restored.outcomes == report.outcomes
    assert (
        restored.calibration.disk_parameters
        == report.calibration.disk_parameters
    )
    rendered = report.render()
    assert "Sim-vs-real validation" in rendered
    assert "verdict" in rendered


def test_validation_needs_two_strategies(report):
    with pytest.raises(ValueError, match="at least two"):
        run_validation(
            object(), strategies=[PrefetchStrategy.INTRA_RUN]
        )


def test_ordering_helper_ranks_cheapest_first():
    outcomes = [
        StrategyOutcome(
            strategy=PrefetchStrategy.INTRA_RUN,
            measured_total_ms=10, measured_stall_ms=8,
            measured_demand_situations=12,
            predicted_total_ms=9, predicted_stall_ms=7,
            predicted_demand_situations=12,
        ),
        StrategyOutcome(
            strategy=PrefetchStrategy.INTER_RUN,
            measured_total_ms=6, measured_stall_ms=2,
            measured_demand_situations=6,
            predicted_total_ms=5, predicted_stall_ms=1,
            predicted_demand_situations=6,
        ),
    ]
    assert _ordering(outcomes, "measured_stall_ms") == [
        "inter-run", "intra-run"
    ]
    assert outcomes[0].stall_ratio == pytest.approx(8 / 7)
    assert outcomes[1].total_ratio == pytest.approx(6 / 5)
