"""Tests for record-key generators."""

import pytest

from repro.workloads import generators


def test_uniform_keys_deterministic_and_in_range():
    keys = generators.uniform_keys(1000, seed=1, key_range=100)
    assert keys == generators.uniform_keys(1000, seed=1, key_range=100)
    assert all(0 <= k < 100 for k in keys)


def test_uniform_keys_seed_matters():
    assert generators.uniform_keys(50, seed=1) != generators.uniform_keys(50, seed=2)


def test_gaussian_keys_centered():
    keys = generators.gaussian_keys(5000, seed=2, mean=0.0, stddev=100.0)
    mean = sum(keys) / len(keys)
    assert abs(mean) < 10.0


def test_sorted_keys():
    keys = generators.sorted_keys(100)
    assert keys == sorted(keys)
    assert len(keys) == 100


def test_reverse_sorted_keys():
    keys = generators.reverse_sorted_keys(100)
    assert keys == sorted(keys, reverse=True)


def test_nearly_sorted_keys_mostly_ordered():
    keys = generators.nearly_sorted_keys(1000, seed=3, displacement=4)
    inversions = sum(1 for i in range(len(keys) - 1) if keys[i] > keys[i + 1])
    assert inversions < len(keys) / 2
    assert keys != sorted(keys)  # but not perfectly sorted


def test_zipf_keys_skewed():
    keys = generators.zipf_keys(10_000, seed=4, alpha=1.5, universe=100)
    assert all(0 <= k < 100 for k in keys)
    counts = [keys.count(v) for v in range(5)]
    # Rank 0 dominates rank 4 heavily under alpha=1.5.
    assert counts[0] > 3 * counts[4]


def test_zipf_invalid_parameters():
    with pytest.raises(ValueError):
        generators.zipf_keys(10, seed=1, alpha=0)
    with pytest.raises(ValueError):
        generators.zipf_keys(10, seed=1, universe=0)


def test_generators_return_requested_count():
    assert len(generators.uniform_keys(7, seed=1)) == 7
    assert len(generators.gaussian_keys(7, seed=1)) == 7
    assert len(generators.nearly_sorted_keys(7, seed=1)) == 7
    assert len(generators.zipf_keys(7, seed=1)) == 7
