"""Tests for the random block-depletion process."""

import pytest

from repro.workloads.depletion import (
    DepletionTrace,
    random_depletion_sequence,
    trace_statistics,
)


def test_sequence_depletes_every_block():
    trace = list(random_depletion_sequence(5, 20, seed=1))
    assert len(trace) == 100
    for run in range(5):
        assert trace.count(run) == 20


def test_sequence_deterministic_by_seed():
    a = list(random_depletion_sequence(5, 20, seed=9))
    b = list(random_depletion_sequence(5, 20, seed=9))
    assert a == b
    c = list(random_depletion_sequence(5, 20, seed=10))
    assert a != c


def test_finished_runs_never_chosen_again():
    trace = list(random_depletion_sequence(3, 5, seed=2))
    last_seen = {run: max(i for i, r in enumerate(trace) if r == run)
                 for run in range(3)}
    for run, position in last_seen.items():
        assert trace[position:].count(run) == 1


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        list(random_depletion_sequence(0, 10, seed=1))
    with pytest.raises(ValueError):
        list(random_depletion_sequence(1, 0, seed=1))


def test_skewed_sequence_depletes_everything():
    from repro.workloads.depletion import skewed_depletion_sequence

    trace = list(skewed_depletion_sequence(5, 20, seed=1, alpha=1.5))
    assert len(trace) == 100
    for run in range(5):
        assert trace.count(run) == 20


def test_skewed_sequence_alpha_zero_is_uniformish():
    from repro.workloads.depletion import skewed_depletion_sequence

    trace = list(skewed_depletion_sequence(4, 500, seed=2, alpha=0.0))
    # Early counts roughly balanced (first half of the trace).
    early = trace[:1000]
    counts = [early.count(run) for run in range(4)]
    assert max(counts) - min(counts) < 150


def test_skewed_sequence_prefers_low_runs():
    from repro.workloads.depletion import skewed_depletion_sequence

    trace = list(skewed_depletion_sequence(4, 500, seed=3, alpha=2.0))
    first_finish = {run: trace.index(run) for run in range(4)}
    # Run 0 is hottest: it finishes its 500 blocks earliest.
    last_seen = {run: max(i for i, r in enumerate(trace) if r == run)
                 for run in range(4)}
    assert last_seen[0] == min(last_seen.values())
    assert first_finish[0] == 0 or trace[:20].count(0) >= trace[:20].count(3)


def test_skewed_sequence_invalid_arguments():
    from repro.workloads.depletion import skewed_depletion_sequence

    with pytest.raises(ValueError):
        list(skewed_depletion_sequence(0, 10, seed=1))
    with pytest.raises(ValueError):
        list(skewed_depletion_sequence(2, 10, seed=1, alpha=-1))


def test_skewed_sequence_deterministic():
    from repro.workloads.depletion import skewed_depletion_sequence

    a = list(skewed_depletion_sequence(5, 30, seed=9, alpha=1.0))
    b = list(skewed_depletion_sequence(5, 30, seed=9, alpha=1.0))
    assert a == b


def test_trace_counts():
    trace = DepletionTrace.random(4, 10, seed=3)
    assert trace.counts() == [10, 10, 10, 10]
    assert len(trace) == 40


def test_trace_from_sequence_validates_runs():
    DepletionTrace.from_sequence([0, 1, 0], num_runs=2)
    with pytest.raises(ValueError):
        DepletionTrace.from_sequence([0, 2], num_runs=2)


def test_move_distances():
    trace = DepletionTrace.from_sequence([0, 3, 1, 1], num_runs=4)
    assert trace.move_distances() == [3, 2, 0]


def test_interleave_factor_bounds():
    random_trace = DepletionTrace.random(10, 100, seed=4)
    # Uniform choice over 10 runs switches ~90% of steps.
    assert 0.85 < random_trace.interleave_factor() < 0.95
    sequential = DepletionTrace.from_sequence([0] * 10 + [1] * 10, num_runs=2)
    assert sequential.interleave_factor() == pytest.approx(1 / 19)


def test_mean_move_distance_tracks_seek_model():
    """Empirical mean move distance ~ k/3 while all runs are alive."""
    k = 25
    trace = DepletionTrace.random(k, 400, seed=5)
    stats = trace_statistics(trace)
    # The tail (runs finishing) pulls the mean down slightly.
    assert 0.85 * k / 3 < stats["mean_move_distance"] < 1.05 * k / 3


def test_trace_statistics_keys():
    trace = DepletionTrace.random(3, 5, seed=6)
    stats = trace_statistics(trace)
    assert set(stats) == {"length", "mean_move_distance", "interleave_factor"}
    assert stats["length"] == 15.0


def test_empty_ish_trace_statistics():
    trace = DepletionTrace.from_sequence([0], num_runs=1)
    stats = trace_statistics(trace)
    assert stats["mean_move_distance"] == 0.0
    assert stats["interleave_factor"] == 0.0
